"""Controller metrics: the paper's measurement definitions."""

from __future__ import annotations

import pytest

from repro.core.metrics import ControllerMetrics
from repro.core.requests import AccessRecord, LlcRequest


def record(
    leaf=0, dummy=False, read=5, written=5, dram_read=5, dram_written=5,
    t0=0.0, t1=100.0, t2=100.0, t3=200.0, replaced=False,
) -> AccessRecord:
    return AccessRecord(
        leaf=leaf,
        was_dummy=dummy,
        read_nodes=read,
        written_nodes=written,
        dram_read_nodes=dram_read,
        dram_written_nodes=dram_written,
        read_start_ns=t0,
        read_end_ns=t1,
        write_start_ns=t2,
        write_end_ns=t3,
        replaced_dummy=replaced,
    )


class TestAccessRecord:
    def test_dram_time_spans_both_phases(self):
        assert record().dram_time_ns == pytest.approx(200.0)


class TestControllerMetrics:
    def test_access_accounting(self):
        metrics = ControllerMetrics()
        metrics.on_access(record())
        metrics.on_access(record(dummy=True, replaced=True))
        assert metrics.real_accesses == 1
        assert metrics.dummy_accesses == 1
        assert metrics.total_accesses == 2
        assert metrics.dummies_replaced == 1
        assert metrics.dummy_fraction == pytest.approx(0.5)

    def test_avg_path_buckets_is_per_phase(self):
        """Traditional ORAM with L+1 buckets per phase must report
        exactly L+1 — the paper's Figure 10 y-axis."""
        metrics = ControllerMetrics()
        metrics.on_access(record(read=25, written=25))
        metrics.on_access(record(read=25, written=25))
        assert metrics.avg_path_buckets == pytest.approx(25.0)

    def test_fork_access_counts_both_phases(self):
        metrics = ControllerMetrics()
        metrics.on_access(record(read=18, written=20))
        assert metrics.avg_path_buckets == pytest.approx(19.0)

    def test_latency_tracking(self):
        metrics = ControllerMetrics()
        metrics.on_request_complete(100.0, "oram")
        metrics.on_request_complete(300.0, "stash")
        assert metrics.real_completed == 2
        assert metrics.avg_latency_ns == pytest.approx(200.0)
        assert metrics.served_without_access == {"stash": 1}
        assert metrics.latency_percentile(0.5) == 100.0
        assert metrics.latency_percentile(1.0) == 300.0

    def test_normalized_request_count(self):
        metrics = ControllerMetrics()
        for _ in range(4):
            metrics.on_access(record())
        metrics.on_access(record(dummy=True))
        for _ in range(4):
            metrics.on_request_complete(10.0, "oram")
        assert metrics.normalized_request_count() == pytest.approx(1.25)

    def test_empty_metrics_are_zero(self):
        metrics = ControllerMetrics()
        assert metrics.avg_latency_ns == 0.0
        assert metrics.avg_path_buckets == 0.0
        assert metrics.dummy_fraction == 0.0
        assert metrics.normalized_request_count() == 0.0
        assert metrics.latency_percentile(0.5) == 0.0

    def test_record_cap(self):
        metrics = ControllerMetrics(max_records=3)
        for _ in range(5):
            metrics.on_access(record())
        assert len(metrics.records) == 3
        assert metrics.real_accesses == 5  # counters unaffected

    def test_summary_keys(self):
        metrics = ControllerMetrics()
        metrics.on_access(record())
        metrics.on_request_complete(50.0, "oram")
        summary = metrics.summary()
        for key in (
            "real_completed",
            "avg_latency_ns",
            "avg_path_buckets",
            "dummy_fraction",
        ):
            assert key in summary

    def test_latency_property_requires_completion(self):
        request = LlcRequest(addr=1, is_write=False)
        with pytest.raises(ValueError):
            _ = request.latency_ns

"""Cross-cutting integration tests: the whole stack at once.

Each scenario drives the controller with every subsystem enabled —
recursion, encryption, MAC, scheduling, dummy replacing, PLB — and
verifies functional correctness, invariants and the metric plumbing in
one pass. These are the configurations a downstream user would actually
deploy.
"""

from __future__ import annotations

import random

import pytest

from repro.config import (
    CacheConfig,
    DramConfig,
    OramConfig,
    RecursionConfig,
    SchedulerConfig,
    SystemConfig,
)
from repro.core.controller import ForkPathController
from repro.errors import InvariantViolationError
from repro.oram.encryption import CounterModeCipher
from repro.workloads.synthetic import hotspot_trace
from repro.workloads.trace import TraceSource


def full_stack_config(seed: int = 0) -> SystemConfig:
    return SystemConfig(
        oram=OramConfig(
            levels=11, bucket_slots=4, block_bytes=32, stash_capacity=250
        ),
        scheduler=SchedulerConfig(label_queue_size=16),
        cache=CacheConfig(policy="mac", capacity_bytes=32 * 1024, ways=8),
        dram=DramConfig(channels=2),
        recursion=RecursionConfig(
            enabled=True,
            labels_per_block=16,
            onchip_posmap_bytes=512,
            plb_entries=32,
        ),
        seed=seed,
    )


def normalise(value, block_bytes: int):
    """Counter-mode storage serialises int payloads to padded bytes."""
    if isinstance(value, bytes):
        return int.from_bytes(value, "little", signed=True)
    return value


def replay_check(completed, block_bytes: int = 32) -> None:
    latest: dict[int, object] = {}
    for request in sorted(completed, key=lambda r: r.arrival_ns):
        if request.is_write:
            latest[request.addr] = request.payload
        else:
            expected = latest.get(request.addr)
            got = normalise(request.value, block_bytes)
            assert got == expected or (expected is None and got == 0), (
                request.addr,
                got,
                expected,
            )


class TestFullStack:
    def run_stack(self, seed: int, n: int = 500, encrypted: bool = True):
        config = full_stack_config(seed)
        trace = hotspot_trace(
            n, 600, 180.0, random.Random(seed), write_fraction=0.4
        )
        cipher = (
            CounterModeCipher(b"integration", config.oram.block_bytes)
            if encrypted
            else None
        )
        controller = ForkPathController(
            config,
            TraceSource(trace),
            rng=random.Random(seed + 1),
            cipher=cipher,
        )
        metrics = controller.run()
        return controller, controller.source, metrics

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_everything_on_replay_semantics(self, seed):
        controller, source, metrics = self.run_stack(seed)
        assert len(source.completed) == 500
        replay_check(source.completed)

    def test_everything_on_metrics_coherent(self):
        controller, source, metrics = self.run_stack(3)
        assert metrics.real_completed == 500
        assert metrics.end_time_ns > 0
        assert metrics.avg_path_buckets < controller.geometry.levels + 1
        assert controller.dram.stats.reads == metrics.dram_read_nodes
        assert controller.energy.breakdown.total_nj > 0
        assert controller.plb is not None
        assert controller.plb.stats.hits > 0

    def test_tree_state_consistent_after_run(self):
        """Post-run deep check: every *authoritative* bucket respects
        the path invariant. Memory copies of cache-resident or
        fork-retained nodes are shadowed (stale) and skipped — the
        controller never reads them without going through the cache or
        the resident set first."""
        controller, _, _ = self.run_stack(4, n=300)
        geometry = controller.geometry
        shadowed = controller.cache.cached_node_ids() | set(
            controller.fork.resident
        )
        seen: dict[int, str] = {}
        for block in controller.stash.blocks():
            seen[block.addr] = "stash"
        for node_id in controller.memory.materialised_nodes():
            if node_id in shadowed:
                continue
            bucket = controller.memory.peek_bucket(node_id)
            for block in bucket:
                if not geometry.node_on_path(node_id, block.leaf):
                    raise InvariantViolationError(
                        f"block {block.addr} off its path"
                    )
                seen.setdefault(block.addr, f"node {node_id}")
        # Cached buckets hold the rest; no block may be lost entirely.
        cache_blocks = controller.cache.cached_addresses()
        written = {
            request.addr
            for request in controller.source.completed
            if request.is_write and request.served_by != "cancelled"
        }
        for addr in written:
            assert addr in seen or addr in cache_blocks, f"lost block {addr}"

    def test_unencrypted_matches_encrypted_values(self):
        """The cipher must be functionally transparent."""
        _, enc_source, _ = self.run_stack(5, n=300, encrypted=True)
        _, plain_source, _ = self.run_stack(5, n=300, encrypted=False)
        enc = {
            r.request_id: r.value for r in enc_source.completed if not r.is_write
        }
        plain = {
            r.request_id: r.value
            for r in plain_source.completed
            if not r.is_write
        }
        # Same trace (same seed) -> same request ids may differ (global
        # counter), so compare by arrival order instead.
        enc_values = [
            r.value
            for r in sorted(enc_source.completed, key=lambda x: x.arrival_ns)
            if not r.is_write
        ]
        plain_values = [
            r.value
            for r in sorted(plain_source.completed, key=lambda x: x.arrival_ns)
            if not r.is_write
        ]
        assert len(enc_values) == len(plain_values)
        for enc_value, plain_value in zip(enc_values, plain_values):
            # Encrypted payloads come back as padded bytes for ints.
            if plain_value is None:
                assert enc_value is None or set(enc_value) == {0} or enc_value == plain_value
            else:
                assert enc_value is not None

    def test_deterministic_given_seeds(self):
        _, source_a, metrics_a = self.run_stack(7, n=250)
        _, source_b, metrics_b = self.run_stack(7, n=250)
        assert metrics_a.end_time_ns == metrics_b.end_time_ns
        assert metrics_a.total_accesses == metrics_b.total_accesses
        assert [r.complete_ns for r in source_a.completed] == [
            r.complete_ns for r in source_b.completed
        ]


class TestLongRunStability:
    def test_ten_thousand_requests_no_drift(self):
        """A long run at saturation: no overflow, no leak of requests,
        bounded queues, finite latency tail."""
        config = SystemConfig(
            oram=OramConfig(levels=12, stash_capacity=300),
            scheduler=SchedulerConfig(label_queue_size=32),
            cache=CacheConfig(policy="treetop", capacity_bytes=64 * 1024),
        )
        trace = hotspot_trace(10_000, 3000, 80.0, random.Random(13))
        controller = ForkPathController(
            config, TraceSource(trace), rng=random.Random(14)
        )
        metrics = controller.run()
        assert metrics.real_completed == 10_000
        assert controller.address_queue.is_empty()
        assert not controller.address_queue.has_inflight()
        assert metrics.latency_percentile(0.999) < metrics.end_time_ns
        replay_check(controller.source.completed)

"""On-chip ORAM data caches: treetop and merging-aware (Section 3.5)."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, OramConfig
from repro.core.mac import (
    MergingAwareCache,
    NoCache,
    TreetopCache,
    expected_overlap_levels,
    make_cache,
)
from repro.errors import ConfigError
from repro.oram.blocks import Block, Bucket
from repro.oram.tree import TreeGeometry


def bucket_with(*addrs: int, leaf: int = 0, capacity: int = 4) -> Bucket:
    bucket = Bucket(capacity)
    for addr in addrs:
        bucket.add(Block(addr, leaf))
    return bucket


class TestNoCache:
    def test_covers_nothing(self):
        cache = NoCache()
        assert not cache.covers_level(0)
        assert cache.lookup_bucket(0) is None
        assert cache.take_block(1) is None
        assert cache.capacity_buckets() == 0
        with pytest.raises(ConfigError):
            cache.insert_bucket(0, Bucket(4))


class TestTreetop:
    def test_cutoff_from_capacity(self):
        tree = TreeGeometry(10)
        # 15 buckets -> complete levels 0..3 fit (2^4 - 1 = 15).
        assert TreetopCache(tree, 15).cutoff_level == 3
        assert TreetopCache(tree, 14).cutoff_level == 2
        assert TreetopCache(tree, 1).cutoff_level == 0

    def test_cutoff_clamped_to_tree(self):
        tree = TreeGeometry(2)
        assert TreetopCache(tree, 10_000).cutoff_level == 2

    def test_hit_removes_bucket(self):
        cache = TreetopCache(TreeGeometry(4), 15)
        cache.insert_bucket(3, bucket_with(9))
        hit = cache.lookup_bucket(3)
        assert hit.find(9) is not None
        assert cache.lookup_bucket(3) is None
        assert cache.stats.read_hits == 1
        assert cache.stats.read_misses == 1

    def test_never_evicts(self):
        cache = TreetopCache(TreeGeometry(4), 15)
        for node in range(15):
            assert cache.insert_bucket(node, bucket_with(node + 100)) == []
        assert cache.stats.evictions == 0

    def test_take_block_by_program_address(self):
        cache = TreetopCache(TreeGeometry(4), 15)
        cache.insert_bucket(2, bucket_with(55))
        block = cache.take_block(55)
        assert block.addr == 55
        assert cache.take_block(55) is None
        # Bucket itself remains cached, minus the block.
        assert cache.lookup_bucket(2).find(55) is None

    def test_reinsert_replaces(self):
        cache = TreetopCache(TreeGeometry(4), 15)
        cache.insert_bucket(2, bucket_with(1))
        cache.insert_bucket(2, bucket_with(2))
        assert cache.take_block(1) is None
        assert cache.take_block(2) is not None


class TestMacAllocation:
    def test_full_allocation_covers_whole_levels(self):
        tree = TreeGeometry(10)
        # m1=3; capacity 8+16+4: level 3 and 4 full, 4 frames of 5.
        cache = MergingAwareCache(tree, 28, first_level=3)
        assert cache._alloc[3] == 8
        assert cache._alloc[4] == 16
        assert cache._alloc[5] == 4
        assert cache.m1 == 3 and cache.m2 == 5
        assert cache.covers_level(3) and cache.covers_level(5)
        assert not cache.covers_level(2) and not cache.covers_level(6)

    def test_geometric_allocation_matches_equation_one(self):
        tree = TreeGeometry(10)
        cache = MergingAwareCache(
            tree, 30, first_level=3, allocation="geometric"
        )
        # 2**(r - m1 + 1): 2, 4, 8, 16 for levels 3..6.
        assert cache._alloc[3] == 2
        assert cache._alloc[4] == 4
        assert cache._alloc[5] == 8
        assert cache._alloc[6] == 16

    def test_fully_resident_level_never_evicts(self):
        tree = TreeGeometry(6)
        cache = MergingAwareCache(tree, 8, first_level=3, bucket_ways=2)
        level3 = [tree.node(3, index) for index in range(8)]
        for node in level3:
            assert cache.insert_bucket(node, bucket_with(node + 500)) == []
        for node in level3:
            assert cache.lookup_bucket(node) is not None

    def test_partial_level_evicts_lru(self):
        tree = TreeGeometry(8)
        cache = MergingAwareCache(
            tree, 4, first_level=3, bucket_ways=2, allocation="geometric"
        )
        # Level 3 gets 2 frames (1 set of 2 ways); level 4 gets 2.
        a, b, c = (tree.node(3, index) for index in (0, 2, 4))
        assert cache.set_index(a) == cache.set_index(b) == cache.set_index(c)
        cache.insert_bucket(a, bucket_with(1))
        cache.insert_bucket(b, bucket_with(2))
        evicted = cache.insert_bucket(c, bucket_with(3))
        assert [node for node, _ in evicted] == [a]  # LRU victim
        assert cache.stats.evictions == 1

    def test_set_index_rejects_uncovered_level(self):
        tree = TreeGeometry(8)
        cache = MergingAwareCache(tree, 16, first_level=3)
        with pytest.raises(ConfigError):
            cache.set_index(0)  # root, below m1

    def test_take_block_promotion(self):
        tree = TreeGeometry(8)
        cache = MergingAwareCache(tree, 16, first_level=3)
        node = tree.node(3, 1)
        cache.insert_bucket(node, bucket_with(77))
        assert cache.take_block(77).addr == 77
        assert cache.stats.block_promotions == 1

    def test_m1_clamped_to_tree(self):
        tree = TreeGeometry(3)
        cache = MergingAwareCache(tree, 8, first_level=10)
        assert cache.m1 <= tree.levels

    def test_invalid_parameters(self):
        tree = TreeGeometry(4)
        with pytest.raises(ConfigError):
            MergingAwareCache(tree, 0, first_level=1)
        with pytest.raises(ConfigError):
            MergingAwareCache(tree, 4, first_level=1, bucket_ways=0)
        with pytest.raises(ConfigError):
            MergingAwareCache(tree, 4, first_level=1, allocation="other")


class TestExpectedOverlap:
    def test_log_scaling(self):
        assert expected_overlap_levels(1) == 1
        assert expected_overlap_levels(64) == 7
        assert expected_overlap_levels(128) == 8

    def test_invalid(self):
        with pytest.raises(ConfigError):
            expected_overlap_levels(0)


class TestFactory:
    def setup_method(self):
        self.oram = OramConfig(levels=10, bucket_slots=4, block_bytes=64)
        self.tree = TreeGeometry(10)

    def test_none(self):
        cache = make_cache(CacheConfig(policy="none"), self.oram, self.tree, 64)
        assert isinstance(cache, NoCache)

    def test_treetop_capacity_in_buckets(self):
        config = CacheConfig(policy="treetop", capacity_bytes=15 * 256)
        cache = make_cache(config, self.oram, self.tree, 64)
        assert isinstance(cache, TreetopCache)
        assert cache.capacity_buckets() == 15

    def test_mac_first_level_from_queue_size(self):
        config = CacheConfig(policy="mac", capacity_bytes=1 << 16)
        cache = make_cache(config, self.oram, self.tree, 64)
        assert isinstance(cache, MergingAwareCache)
        assert cache.m1 == 7

    def test_mac_geometric_mode(self):
        config = CacheConfig(
            policy="mac", capacity_bytes=1 << 16, mac_allocation="geometric"
        )
        cache = make_cache(config, self.oram, self.tree, 64)
        assert cache.allocation == "geometric"

    def test_too_small_capacity_rejected(self):
        config = CacheConfig(policy="mac", capacity_bytes=10)
        with pytest.raises(ConfigError):
            make_cache(config, self.oram, self.tree, 64)

"""Configuration validation and the derived Table 1 quantities."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    CacheConfig,
    DramConfig,
    DramTimingConfig,
    OramConfig,
    ProcessorConfig,
    RecursionConfig,
    SchedulerConfig,
    SystemConfig,
    levels_for_capacity,
    table1_oram_config,
    table1_processor_config,
)
from repro.errors import ConfigError


class TestLevelsForCapacity:
    def test_paper_configuration_is_l24(self):
        # Table 1: 4 GB data ORAM, 64 B blocks, Z = 4, 50% utilisation.
        assert levels_for_capacity(4 << 30) == 24

    def test_paper_size_sweep(self):
        # Figure 17(b): 1/4/16/32 GB -> L = 22/24/26/27.
        assert levels_for_capacity(1 << 30) == 22
        assert levels_for_capacity(16 << 30) == 26
        assert levels_for_capacity(32 << 30) == 27

    def test_tiny_capacity(self):
        assert levels_for_capacity(64) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            levels_for_capacity(0)
        with pytest.raises(ConfigError):
            levels_for_capacity(1 << 20, utilization=0.0)


class TestOramConfig:
    def test_derived_quantities(self):
        config = OramConfig(levels=3, bucket_slots=4, block_bytes=64)
        assert config.num_leaves == 8
        assert config.num_buckets == 15
        assert config.path_length == 4
        assert config.bucket_bytes == 256

    def test_num_blocks_defaults_to_utilisation_bound(self):
        config = OramConfig(levels=3, bucket_slots=4, utilization=0.5)
        assert config.num_blocks == 30

    def test_explicit_num_blocks_checked(self):
        with pytest.raises(ConfigError):
            OramConfig(levels=3, bucket_slots=4, utilization=0.5, num_blocks=31)

    def test_for_capacity_builder(self):
        config = OramConfig.for_capacity(1 << 20)
        assert config.levels == levels_for_capacity(1 << 20)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"levels": -1},
            {"levels": 41},
            {"bucket_slots": 0},
            {"block_bytes": 0},
            {"stash_capacity": 0},
            {"utilization": 1.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            OramConfig(**kwargs)

    def test_table1_defaults(self):
        config = table1_oram_config()
        assert config.levels == 24
        assert config.bucket_slots == 4
        assert config.block_bytes == 64


class TestSchedulerConfig:
    def test_auto_aging_threshold_scales_with_queue(self):
        config = SchedulerConfig(label_queue_size=32)
        assert config.effective_aging_threshold == 16 * 32

    def test_explicit_aging_threshold_respected(self):
        config = SchedulerConfig(aging_threshold=7)
        assert config.effective_aging_threshold == 7

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"label_queue_size": 0},
            {"address_queue_size": 0},
            {"aging_threshold": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            SchedulerConfig(**kwargs)


class TestCacheConfig:
    def test_policies(self):
        for policy in ("none", "treetop", "mac"):
            CacheConfig(policy=policy)
        with pytest.raises(ConfigError):
            CacheConfig(policy="plru")

    def test_mac_allocation_values(self):
        CacheConfig(mac_allocation="full")
        CacheConfig(mac_allocation="geometric")
        with pytest.raises(ConfigError):
            CacheConfig(mac_allocation="harmonic")

    def test_capacity_checked_unless_none(self):
        CacheConfig(policy="none", capacity_bytes=0)
        with pytest.raises(ConfigError):
            CacheConfig(policy="mac", capacity_bytes=0)


class TestDramConfig:
    def test_timing_derivations(self):
        timing = DramTimingConfig()
        assert timing.burst_bytes == 64
        assert timing.burst_time_ns == pytest.approx(5.0)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            DramTimingConfig(t_ck_ns=0)
        with pytest.raises(ConfigError):
            DramConfig(channels=0)
        with pytest.raises(ConfigError):
            DramConfig(layout="zigzag")


class TestProcessorConfig:
    def test_table1(self):
        config = table1_processor_config()
        assert config.num_cores == 4
        assert config.core_type == "ooo"
        assert config.l2_bytes == 1 << 20

    def test_inorder_effective_mlp_is_one(self):
        config = ProcessorConfig(core_type="inorder", mlp=16)
        assert config.effective_mlp == 1

    def test_ooo_effective_mlp(self):
        config = ProcessorConfig(core_type="ooo", mlp=16)
        assert config.effective_mlp == 16

    def test_cycle_ns(self):
        assert ProcessorConfig(frequency_ghz=2.0).cycle_ns == pytest.approx(0.5)

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            ProcessorConfig(num_cores=0)
        with pytest.raises(ConfigError):
            ProcessorConfig(core_type="vliw")


class TestRecursionConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            RecursionConfig(labels_per_block=1)
        with pytest.raises(ConfigError):
            RecursionConfig(onchip_posmap_bytes=0)


class TestSystemConfig:
    def test_replace_is_shallow_variant(self):
        config = SystemConfig()
        variant = config.replace(idle_gap_ns=10.0)
        assert variant.idle_gap_ns == 10.0
        assert config.idle_gap_ns == 0.0
        assert variant.oram is config.oram

    def test_defaults_compose(self):
        config = SystemConfig()
        assert config.oram.levels == 24
        assert config.scheduler.label_queue_size == 64

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SystemConfig().seed = 5  # type: ignore[misc]

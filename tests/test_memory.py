"""Untrusted memory: lazy buckets and adversary trace recording."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.oram.blocks import Block, Bucket
from repro.oram.encryption import CounterModeCipher
from repro.oram.memory import MemoryOp, TraceRecorder, UntrustedMemory
from repro.oram.tree import TreeGeometry


def make_memory(levels: int = 4, z: int = 4, cipher=None) -> UntrustedMemory:
    return UntrustedMemory(TreeGeometry(levels), z, cipher)


class TestLazyStorage:
    def test_untouched_bucket_reads_all_dummy(self):
        memory = make_memory()
        bucket = memory.read_bucket(7)
        assert len(bucket) == 0
        assert bucket.capacity == 4

    def test_write_then_read_roundtrip(self):
        memory = make_memory()
        bucket = Bucket(4)
        bucket.add(Block(9, 3, "v"))
        memory.write_bucket(5, bucket)
        assert memory.read_bucket(5).find(9).payload == "v"

    def test_materialised_nodes_tracks_writes_only(self):
        memory = make_memory()
        memory.read_bucket(1)
        assert memory.materialised_nodes() == []
        memory.write_bucket(3, Bucket(4))
        memory.write_bucket(1, Bucket(4))
        assert memory.materialised_nodes() == [1, 3]
        assert 3 in memory
        assert 2 not in memory

    def test_big_tree_is_cheap(self):
        """The paper's L=24 tree must not be materialised eagerly."""
        memory = make_memory(levels=24)
        memory.write_bucket(123456, Bucket(4))
        assert memory.materialised_nodes() == [123456]

    def test_node_bounds(self):
        memory = make_memory(levels=2)
        with pytest.raises(ConfigError):
            memory.read_bucket(7)
        with pytest.raises(ConfigError):
            memory.write_bucket(-1, Bucket(4))

    def test_bucket_capacity_must_match(self):
        memory = make_memory(z=4)
        with pytest.raises(ConfigError):
            memory.write_bucket(0, Bucket(2))


class TestTrace:
    def test_events_record_op_node_time(self):
        memory = make_memory()
        memory.read_bucket(2, time_ns=10.0)
        memory.write_bucket(2, Bucket(4), time_ns=20.0)
        assert memory.trace.op_sequence() == [
            (MemoryOp.READ, 2),
            (MemoryOp.WRITE, 2),
        ]
        assert memory.trace.events[1].time_ns == 20.0

    def test_peek_does_not_record(self):
        memory = make_memory()
        memory.peek_bucket(3)
        assert len(memory.trace) == 0

    def test_counters(self):
        memory = make_memory()
        memory.read_bucket(0)
        memory.read_bucket(1)
        memory.write_bucket(0, Bucket(4))
        assert memory.reads == 2
        assert memory.writes == 1

    def test_shared_recorder(self):
        recorder = TraceRecorder()
        memory = UntrustedMemory(TreeGeometry(3), 4, trace=recorder)
        memory.read_bucket(0)
        assert recorder.node_sequence() == [0]

    def test_disable_and_clear(self):
        memory = make_memory()
        memory.trace.enabled = False
        memory.read_bucket(0)
        assert len(memory.trace) == 0
        memory.trace.enabled = True
        memory.read_bucket(0)
        memory.trace.clear()
        assert len(memory.trace) == 0


class TestWithRealCipher:
    def test_contents_on_the_bus_are_ciphertext(self):
        cipher = CounterModeCipher(b"k", block_bytes=8)
        memory = make_memory(cipher=cipher)
        bucket = Bucket(4)
        bucket.add(Block(1, 0, b"secret!!"))
        memory.write_bucket(0, bucket)
        stored = memory._store[0]
        assert isinstance(stored, bytes)
        assert b"secret!!" not in stored
        assert memory.read_bucket(0).find(1).payload == b"secret!!"

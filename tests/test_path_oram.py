"""Functional Path ORAM — the protocol reference implementation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_test_config
from repro.errors import ProtocolError
from repro.oram.path_oram import PathOram
from repro.security.properties import chi_square_uniformity


def make_oram(levels: int = 5, **kwargs) -> PathOram:
    defaults = dict(rng=random.Random(1), check_invariants=True)
    defaults.update(kwargs)
    return PathOram(small_test_config(levels), **defaults)


class TestFunctionalCorrectness:
    def test_read_your_writes(self):
        oram = make_oram()
        oram.write(3, "hello")
        assert oram.read(3) == "hello"

    def test_overwrite(self):
        oram = make_oram()
        oram.write(3, "a")
        oram.write(3, "b")
        assert oram.read(3) == "b"

    def test_many_addresses(self):
        oram = make_oram()
        for addr in range(20):
            oram.write(addr, addr * 11)
        for addr in range(20):
            assert oram.read(addr) == addr * 11

    def test_unwritten_address_reads_none_by_default(self):
        assert make_oram().read(7) is None

    def test_strict_mode_rejects_unwritten_reads(self):
        oram = make_oram(strict=True)
        with pytest.raises(ProtocolError):
            oram.read(7)

    def test_address_bounds(self):
        oram = make_oram()
        with pytest.raises(ProtocolError):
            oram.read(oram.config.num_blocks)
        with pytest.raises(ProtocolError):
            oram.write(-1, "x")

    def test_interleaved_random_workload(self):
        oram = make_oram(levels=6)
        rng = random.Random(42)
        shadow: dict[int, int] = {}
        for step in range(600):
            addr = rng.randrange(oram.config.num_blocks)
            if rng.random() < 0.5:
                shadow[addr] = step
                oram.write(addr, step)
            else:
                assert oram.read(addr) == shadow.get(addr)


class TestProtocolMechanics:
    def test_stash_hit_skips_path_access(self):
        """Step 1: a block resident in the stash is returned with no
        path access and no remap (white-box construction)."""
        from repro.oram.blocks import Block

        oram = make_oram()
        oram.posmap.assign(1, 3)
        oram.stash.add(Block(1, 3, "v"))
        oram._written_addrs.add(1)
        oram.verify_invariant()
        assert oram.read(1) == "v"
        assert oram.stats.accesses == 0
        assert oram.stats.stash_hits == 1
        assert oram.posmap.peek(1) == 3  # no remap on a stash hit

    def test_every_access_moves_full_paths(self):
        oram = make_oram(levels=5)
        for addr in range(10):
            oram.write(addr, addr)
        path_len = oram.config.path_length
        assert oram.stats.buckets_read == oram.stats.accesses * path_len
        assert oram.stats.buckets_written == oram.stats.accesses * path_len
        assert oram.stats.avg_path_buckets == pytest.approx(path_len)

    def test_remap_happens_on_every_path_access(self):
        oram = make_oram()
        oram.write(1, "v")
        label_history = set()
        for _ in range(30):
            oram.read(1)
            if oram.stash.get(1) is None:  # only path accesses remap
                label_history.add(oram.posmap.peek(1))
        assert len(label_history) > 1

    def test_dummy_access_counts_and_preserves_data(self):
        oram = make_oram()
        oram.write(1, "v")
        for _ in range(10):
            oram.dummy_access()
        assert oram.stats.dummy_accesses == 10
        assert oram.read(1) == "v"

    def test_leaf_sequence_recorded(self):
        oram = make_oram()
        oram.write(1, "v")
        oram.dummy_access()
        assert len(oram.stats.leaf_sequence) == oram.stats.accesses


class TestSecurityStatistics:
    def test_leaf_sequence_uniform(self):
        oram = make_oram(levels=6, check_invariants=False)
        rng = random.Random(9)
        for _ in range(1500):
            oram.write(rng.randrange(40), 1)
        p_value = chi_square_uniformity(
            oram.stats.leaf_sequence, oram.geometry.num_leaves
        )
        assert p_value > 0.001

    def test_same_address_sequence_gives_random_looking_leaves(self):
        """Repeatedly accessing one address must not repeat leaves."""
        oram = make_oram(levels=6, check_invariants=False)
        oram.write(1, "v")
        for _ in range(800):
            oram.read(1)
        # Drop stash-hit gaps: use the recorded path-access leaves.
        leaves = oram.stats.leaf_sequence
        p_value = chi_square_uniformity(leaves, oram.geometry.num_leaves)
        assert p_value > 0.001


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(), st.integers(0, 29), st.integers(0, 1000)
        ),
        min_size=1,
        max_size=60,
    )
)
def test_pathoram_matches_dict_semantics(ops):
    """Property: PathORAM behaves exactly like a dict, any op sequence."""
    oram = PathOram(small_test_config(4), rng=random.Random(5))
    shadow: dict[int, int] = {}
    for is_write, addr, value in ops:
        addr %= oram.config.num_blocks
        if is_write:
            oram.write(addr, value)
            shadow[addr] = value
        else:
            assert oram.read(addr) == shadow.get(addr)
    oram.verify_invariant()

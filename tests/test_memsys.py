"""Processor-side memory system: caches, cores, full-system plumbing."""

from __future__ import annotations

import random

import pytest

from repro.config import CacheConfig, OramConfig, ProcessorConfig, SystemConfig
from repro.errors import ConfigError
from repro.memsys.cache import CacheHierarchy, SetAssociativeCache
from repro.memsys.processor import Core, CoreCluster, build_cluster
from repro.memsys.system import InsecureMemorySystem, simulate_system
from repro.workloads.spec import spec_benchmark
from repro import fork_path_scheduler, traditional_scheduler


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(1024, ways=2, line_bytes=64)
        hit, _ = cache.access(5, False)
        assert not hit
        hit, _ = cache.access(5, False)
        assert hit

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(2 * 64, ways=2, line_bytes=64)  # 1 set
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)  # refresh 0
        _, victim = cache.access(2, False)
        assert victim is None  # victim 1 was clean
        assert cache.contains(0)
        assert not cache.contains(1)

    def test_dirty_eviction_reports_writeback(self):
        cache = SetAssociativeCache(2 * 64, ways=2, line_bytes=64)
        cache.access(0, True)
        cache.access(1, False)
        _, victim = cache.access(2, False)
        assert victim == 0
        assert cache.stats.writebacks == 1

    def test_flush_returns_dirty_lines(self):
        cache = SetAssociativeCache(1024, ways=2, line_bytes=64)
        cache.access(1, True)
        cache.access(2, False)
        assert cache.flush() == [1]
        assert not cache.contains(1)

    def test_miss_rate(self):
        cache = SetAssociativeCache(1024, ways=2)
        cache.access(1, False)
        cache.access(1, False)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            SetAssociativeCache(100, ways=2, line_bytes=64)
        with pytest.raises(ConfigError):
            SetAssociativeCache(3 * 64, ways=2, line_bytes=64)
        with pytest.raises(ConfigError):
            SetAssociativeCache(1024, ways=0)


class TestCacheHierarchy:
    def test_l1_hit_never_reaches_l2(self):
        hierarchy = CacheHierarchy(ProcessorConfig(num_cores=1))
        hierarchy.access(0, 1, False)
        l2_misses = hierarchy.l2.stats.misses
        miss, requests = hierarchy.access(0, 1, False)
        assert not miss
        assert requests == []
        assert hierarchy.l2.stats.misses == l2_misses

    def test_llc_miss_generates_fill_request(self):
        hierarchy = CacheHierarchy(ProcessorConfig(num_cores=1))
        miss, requests = hierarchy.access(0, 42, False)
        assert miss
        assert (42, False) in requests

    def test_private_l1_shared_l2(self):
        hierarchy = CacheHierarchy(ProcessorConfig(num_cores=2))
        hierarchy.access(0, 7, False)   # core 0 warms L1.0 and L2
        miss, _ = hierarchy.access(1, 7, False)  # core 1: L1 miss, L2 hit
        assert not miss
        assert hierarchy.l1s[1].stats.misses == 1

    def test_calibrated_mpki(self):
        hierarchy = CacheHierarchy(ProcessorConfig(num_cores=1))
        rng = random.Random(1)
        for _ in range(4000):
            hierarchy.access(0, rng.randrange(1 << 16), False)
        mpki = hierarchy.calibrated_mpki(instructions=4_000_000)
        assert 0 < mpki < 1.2

    def test_core_id_bounds(self):
        hierarchy = CacheHierarchy(ProcessorConfig(num_cores=1))
        with pytest.raises(ConfigError):
            hierarchy.access(3, 0, False)


class TestCore:
    def make_core(self, core_type="ooo", n=10, mlp=4) -> Core:
        processor = ProcessorConfig(num_cores=1, core_type=core_type, mlp=mlp)
        return Core(
            core_id=0,
            benchmark=spec_benchmark("429.mcf"),
            processor=processor,
            rng=random.Random(3),
            num_requests=n,
            footprint_cap=1000,
        )

    def test_window_limits_outstanding(self):
        core = self.make_core(mlp=2)
        issued = core.pop_arrivals(1e9)
        assert len(issued) == 2
        assert core.next_arrival_ns() == float("inf")

    def test_completion_reopens_window(self):
        core = self.make_core(mlp=2)
        issued = core.pop_arrivals(1e9)
        core.on_complete(issued[0], 500.0)
        assert core.next_arrival_ns() < float("inf")
        more = core.pop_arrivals(1e9)
        assert len(more) == 1

    def test_inorder_blocks_on_each_miss(self):
        core = self.make_core(core_type="inorder")
        assert len(core.pop_arrivals(1e9)) == 1

    def test_done_after_all_complete(self):
        core = self.make_core(n=3, mlp=8)
        requests = core.pop_arrivals(1e9)
        assert core.exhausted()
        assert not core.done()
        for request in requests:
            core.on_complete(request, 100.0)
        assert core.done()
        assert core.finish_ns == 100.0

    def test_exec_time_includes_compute(self):
        core = self.make_core(n=1)
        core.instructions = 1_000_000
        request = core.pop_arrivals(1e9)[0]
        core.on_complete(request, 10.0)
        # mcf: 1M instr / ipc 0.3 / 2 GHz ≈ 1.67 ms of compute.
        assert core.exec_time_ns() > 1e6

    def test_spurious_completion_rejected(self):
        core = self.make_core(core_type="inorder")
        request = core.pop_arrivals(1e9)[0]
        core.on_complete(request, 1.0)
        with pytest.raises(ConfigError):
            core.on_complete(request, 2.0)


class TestCluster:
    def test_build_cluster_private_regions(self):
        cluster = build_cluster(
            [spec_benchmark("429.mcf")] * 2,
            ProcessorConfig(num_cores=2),
            random.Random(1),
            requests_per_core=5,
            footprint_cap=100,
        )
        addrs = {0: set(), 1: set()}
        for request in cluster.pop_arrivals(1e12):
            addrs[request.core_id].add(request.addr)
        assert all(addr < 100 for addr in addrs[0])
        assert all(100 <= addr < 200 for addr in addrs[1])

    def test_shared_footprint(self):
        cluster = build_cluster(
            [spec_benchmark("429.mcf")] * 2,
            ProcessorConfig(num_cores=2),
            random.Random(1),
            requests_per_core=5,
            footprint_cap=100,
            shared_footprint=True,
        )
        for request in cluster.pop_arrivals(1e12):
            assert request.addr < 100

    def test_instruction_budget_scales_misses_by_mpki(self):
        cluster = build_cluster(
            [spec_benchmark("429.mcf"), spec_benchmark("453.povray")],
            ProcessorConfig(num_cores=2),
            random.Random(1),
            instructions_per_core=100_000,
            footprint_cap=100,
        )
        mcf, povray = cluster.cores
        assert mcf.num_requests == 3200  # 32 MPKI
        assert povray.num_requests == 5  # 0.05 MPKI

    def test_exactly_one_budget_kind(self):
        with pytest.raises(ConfigError):
            build_cluster(
                [spec_benchmark("429.mcf")],
                ProcessorConfig(num_cores=1),
                random.Random(1),
                requests_per_core=5,
                instructions_per_core=100,
            )
        with pytest.raises(ConfigError):
            build_cluster(
                [spec_benchmark("429.mcf")],
                ProcessorConfig(num_cores=1),
                random.Random(1),
            )

    def test_benchmark_count_must_match_cores(self):
        with pytest.raises(ConfigError):
            build_cluster(
                [spec_benchmark("429.mcf")],
                ProcessorConfig(num_cores=2),
                random.Random(1),
                requests_per_core=5,
            )


class TestInsecureMemory:
    def test_serves_closed_loop_to_completion(self):
        cluster = build_cluster(
            [spec_benchmark("429.mcf")] * 2,
            ProcessorConfig(num_cores=2),
            random.Random(1),
            requests_per_core=200,
            footprint_cap=1000,
        )
        memory = InsecureMemorySystem(channels=2)
        finish = memory.run(cluster)
        assert cluster.done()
        assert finish > 0
        assert memory.served == 400

    def test_latency_is_tens_of_ns(self):
        memory = InsecureMemorySystem()
        assert memory.service_time(100.0) == pytest.approx(145.0)


class TestSimulateSystem:
    def make_config(self, scheduler) -> SystemConfig:
        return SystemConfig(
            oram=OramConfig(levels=12, stash_capacity=300),
            scheduler=scheduler,
            cache=CacheConfig(policy="none"),
            processor=ProcessorConfig(num_cores=2),
        )

    def test_slowdown_greater_than_one(self):
        result = simulate_system(
            self.make_config(traditional_scheduler()),
            [spec_benchmark("429.mcf"), spec_benchmark("462.libquantum")],
            requests_per_core=300,
            footprint_cap=2000,
        )
        assert result.slowdown > 2.0
        assert result.metrics.real_completed == 600

    def test_fork_beats_traditional_on_memory_bound_mix(self):
        benchmarks = [spec_benchmark("429.mcf"), spec_benchmark("462.libquantum")]
        fork = simulate_system(
            self.make_config(fork_path_scheduler(32)),
            benchmarks,
            requests_per_core=400,
            footprint_cap=2000,
            seed=3,
        )
        trad = simulate_system(
            self.make_config(traditional_scheduler()),
            benchmarks,
            requests_per_core=400,
            footprint_cap=2000,
            seed=3,
        )
        assert fork.metrics.avg_latency_ns < trad.metrics.avg_latency_ns

    def test_footprint_must_fit_tree(self):
        with pytest.raises(ConfigError):
            simulate_system(
                self.make_config(traditional_scheduler()),
                [spec_benchmark("429.mcf"), spec_benchmark("470.lbm")],
                requests_per_core=10,
                footprint_cap=None,
            )

    def test_run_insecure_optional(self):
        result = simulate_system(
            self.make_config(traditional_scheduler()),
            [spec_benchmark("453.povray"), spec_benchmark("444.namd")],
            requests_per_core=20,
            footprint_cap=500,
            run_insecure=False,
        )
        assert result.insecure_finish_ns == 0.0
        assert result.slowdown == 0.0

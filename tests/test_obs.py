"""Observability layer: events, counters, histograms, sinks, schema.

The load-bearing guarantees under test:

* zero behavioural impact — a traced run and an untraced run of the
  same seeds produce identical controller metrics;
* the per-request lifecycle events appear in causal order with a
  monotone timestamp chain;
* every ``request_completed`` phase breakdown sums exactly to the
  end-to-end latency (the deltas-of-one-chain invariant);
* JSONL traces pass the stdlib schema validator that CI runs.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro import (
    CacheConfig,
    Simulation,
    SystemConfig,
    fork_path_scheduler,
    small_test_config,
)
from repro.config import RecursionConfig
from repro.obs import (
    JsonlSink,
    NullTracer,
    RingBufferSink,
    TerminalSummarySink,
    Tracer,
)
from repro.obs.events import DramBankBusy, RequestCompleted
from repro.obs.schema import (
    PHASE_KEYS,
    phase_sum_tolerance,
    validate_event,
    validate_file,
    validate_lines,
)
from repro.obs.tracer import NULL_TRACER, Counters, LatencyHistogram
from repro.workloads.synthetic import hotspot_trace, uniform_trace


def traced_config(**kwargs) -> SystemConfig:
    merged = dict(
        oram=small_test_config(8),
        scheduler=fork_path_scheduler(16),
        cache=CacheConfig(policy="mac", capacity_bytes=1 << 12),
    )
    merged.update(kwargs)
    return SystemConfig(**merged)


def run_traced(config: SystemConfig, requests: int = 150, **tracer_kwargs):
    ring = RingBufferSink(capacity=1 << 17)
    tracer = Tracer(sinks=[ring], **tracer_kwargs)
    trace = uniform_trace(
        requests, config.oram.num_blocks, 40.0, random.Random(3),
        write_fraction=0.3,
    )
    result = Simulation(config).run(trace, tracer=tracer, rng=random.Random(4))
    return result, tracer, ring


class TestCounters:
    def test_inc_and_get(self):
        counters = Counters()
        counters.inc("a.b")
        counters.inc("a.b", 2)
        counters.inc("a.c", 0.5)
        assert counters.get("a.b") == 3
        assert counters.get("missing") == 0
        assert len(counters) == 2

    def test_as_nested_folds_dots(self):
        counters = Counters()
        counters.inc("dram.bank_busy_waits", 7)
        counters.inc("requests.completed", 2)
        nested = counters.as_nested()
        assert nested["dram"]["bank_busy_waits"] == 7
        assert nested["requests"]["completed"] == 2


class TestLatencyHistogram:
    def test_bucket_boundaries_are_powers_of_two(self):
        histogram = LatencyHistogram()
        histogram.record(100.0)  # [64, 128) bucket
        assert histogram.percentile(0.5) == 128.0
        histogram2 = LatencyHistogram()
        histogram2.record(128.0)  # exactly 128 goes to [128, 256)
        assert histogram2.percentile(0.5) == 256.0

    def test_exact_moments(self):
        histogram = LatencyHistogram()
        for value in (1.0, 3.0, 5.0):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(3.0)
        assert histogram.min == 1.0
        assert histogram.max == 5.0

    def test_empty_summary(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        assert summary["min_ns"] == 0.0


class TestSinks:
    def test_jsonl_sink_writes_parseable_lines(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.handle(DramBankBusy(ts_ns=1.0, channel=0, bank=2, wait_ns=3.5))
        sink.close()
        event = json.loads(stream.getvalue())
        assert event["kind"] == "dram_bank_busy"
        assert event["wait_ns"] == 3.5
        assert sink.events_written == 1

    def test_ring_buffer_caps_and_filters(self):
        sink = RingBufferSink(capacity=2)
        for i in range(4):
            sink.handle(DramBankBusy(ts_ns=float(i)))
        assert sink.events_seen == 4
        assert [event.ts_ns for event in sink.events] == [2.0, 3.0]
        assert len(sink.of_kind("dram_bank_busy")) == 2
        assert sink.of_kind("mac_hit") == []

    def test_terminal_summary_prints_on_close(self):
        stream = io.StringIO()
        sink = TerminalSummarySink(stream=stream)
        sink.handle(DramBankBusy(ts_ns=5.0))
        sink.close()
        assert "dram_bank_busy" in stream.getvalue()


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NullTracer().enabled is False
        NULL_TRACER.emit(DramBankBusy(ts_ns=0.0))
        NULL_TRACER.observe_phases(1.0, {"service_ns": 1.0})
        NULL_TRACER.timeline_probe(0.0, 0, 0, 0, 0)
        assert NULL_TRACER.events_emitted == 0
        assert len(NULL_TRACER.timeline) == 0


class TestDisabledEquivalence:
    def test_traced_and_untraced_runs_are_identical(self):
        """Tracing observes; it must never perturb the simulation."""
        config = traced_config()
        traced, _, _ = run_traced(config)
        trace = uniform_trace(
            150, config.oram.num_blocks, 40.0, random.Random(3),
            write_fraction=0.3,
        )
        untraced = Simulation(config).run(trace, rng=random.Random(4))
        assert traced.metrics.summary() == untraced.metrics.summary()


class TestEventStream:
    def test_lifecycle_order_per_request(self):
        """admitted -> issued -> scheduled -> completed, time monotone."""
        _, _, ring = run_traced(traced_config())
        stages = {}
        for position, event in enumerate(ring.events):
            if event.kind in (
                "request_admitted",
                "request_issued",
                "request_scheduled",
                "request_completed",
            ):
                stages.setdefault(event.request_id, []).append(
                    (event.kind, position, event.ts_ns)
                )
        assert stages
        expected = [
            "request_admitted",
            "request_issued",
            "request_scheduled",
            "request_completed",
        ]
        for request_id, seen in stages.items():
            kinds = [kind for kind, _, _ in seen]
            # A request may skip scheduling (e.g. served from the stash
            # or coalesced) but never reorder the stages it does hit.
            assert kinds == [k for k in expected if k in kinds], request_id
            positions = [position for _, position, _ in seen]
            assert positions == sorted(positions)
            timestamps = [ts for _, _, ts in seen]
            assert timestamps == sorted(timestamps)

    def test_every_completion_has_exact_phase_sum(self):
        _, _, ring = run_traced(traced_config())
        completions = ring.of_kind("request_completed")
        assert completions
        for event in completions:
            assert isinstance(event, RequestCompleted)
            assert set(event.phases) == set(PHASE_KEYS)
            total = sum(event.phases.values())
            assert total == pytest.approx(
                event.latency_ns, abs=phase_sum_tolerance(event.latency_ns)
            )
            for key, value in event.phases.items():
                assert value >= 0.0, (key, value)

    def test_recursion_populates_posmap_phase(self):
        config = traced_config(
            recursion=RecursionConfig(
                enabled=True, labels_per_block=4, onchip_posmap_bytes=64
            )
        )
        _, tracer, ring = run_traced(config)
        completions = ring.of_kind("request_completed")
        assert any(event.phases["posmap_ns"] > 0 for event in completions)
        assert tracer.histogram("latency.posmap").count == len(completions)

    def test_run_bracket_and_counters(self):
        result, tracer, ring = run_traced(traced_config())
        assert ring.events[0].kind == "run_started"
        assert ring.events[-1].kind == "run_finished"
        assert ring.events[-1].requests == result.metrics.real_completed
        counters = tracer.counters
        assert counters.get("requests.completed") == (
            result.metrics.real_completed
        )
        assert counters.get("accesses.real") == result.metrics.real_accesses
        assert counters.get("accesses.dummy") == result.metrics.dummy_accesses
        assert counters.get("cache.read_hits") == (
            result.metrics.cache_read_hits
        )

    def test_timeline_probe_throttling(self):
        _, dense_tracer, _ = run_traced(traced_config())
        _, sparse_tracer, _ = run_traced(
            traced_config(), timeline_period_ns=50_000.0
        )
        assert len(dense_tracer.timeline) > len(sparse_tracer.timeline) > 0

    def test_latency_histogram_matches_metrics(self):
        result, tracer, _ = run_traced(traced_config())
        histogram = tracer.histogram("latency.total")
        assert histogram.count == result.metrics.real_completed
        assert histogram.mean == pytest.approx(result.metrics.avg_latency_ns)


class TestSchema:
    def test_simulation_trace_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sinks=[JsonlSink(str(path))])
        config = traced_config()
        trace = hotspot_trace(120, config.oram.num_blocks, 60.0,
                              random.Random(9))
        Simulation(config).run(trace, tracer=tracer)
        assert validate_file(str(path)) == []

    def test_unknown_kind_rejected(self):
        assert validate_event({"kind": "nope", "ts_ns": 0.0})

    def test_missing_and_extra_fields_rejected(self):
        errors = validate_event(
            {"kind": "mac_hit", "ts_ns": 0.0, "node_id": 1, "bogus": 2}
        )
        assert any("level" in error for error in errors)
        assert any("bogus" in error for error in errors)

    def test_phase_sum_violation_rejected(self):
        event = {
            "kind": "request_completed",
            "ts_ns": 10.0,
            "request_id": 1,
            "addr": 2,
            "served_by": "oram",
            "latency_ns": 100.0,
            "phases": {
                "posmap_ns": 0.0,
                "queue_wait_ns": 10.0,
                "sched_wait_ns": 10.0,
                "service_ns": 10.0,
            },
        }
        errors = validate_event(event)
        assert any("sum" in error for error in errors)
        event["phases"]["service_ns"] = 80.0
        assert validate_event(event) == []

    def test_validate_lines_reports_bad_json(self):
        errors = validate_lines(["not json", ""])
        assert len(errors) == 1 and "invalid JSON" in errors[0]


class TestRecordsDropped:
    def test_dropped_records_are_counted(self):
        config = traced_config()
        trace = uniform_trace(
            120, config.oram.num_blocks, 40.0, random.Random(3),
            write_fraction=0.3,
        )
        simulation = Simulation(config)
        controller = simulation.controller(trace, rng=random.Random(4))
        controller.metrics.max_records = 10
        metrics = controller.run()
        assert len(metrics.records) == 10
        assert metrics.records_dropped == metrics.total_accesses - 10
        assert metrics.summary()["records_dropped"] == float(
            metrics.records_dropped
        )

    def test_no_drops_below_cap(self):
        from repro.core.metrics import ControllerMetrics

        assert ControllerMetrics().summary()["records_dropped"] == 0.0


class TestPaceEvents:
    """Schema round-trips for the ``repro.pace`` event family and the
    ``pace_wait_ns`` optional phase of ``service_completed``."""

    def make_tick(self, **overrides):
        from repro.obs.events import PacerTick

        merged = dict(
            ts_ns=1_000.0,
            slot=3,
            interval_ns=250_000.0,
            wait_ns=240_000.0,
            queue_depth=2,
            real=True,
        )
        merged.update(overrides)
        return PacerTick(**merged)

    def test_pacer_tick_round_trips(self):
        event = self.make_tick().to_dict()
        assert event["kind"] == "pacer_tick"
        assert validate_event(event) == []
        assert validate_event(self.make_tick(shard_id=1).to_dict()) == []

    def test_pace_dummy_issued_round_trips(self):
        from repro.obs.events import PaceDummyIssued

        event = PaceDummyIssued(ts_ns=2_000.0, slot=7).to_dict()
        assert validate_event(event) == []
        sharded = PaceDummyIssued(ts_ns=2_000.0, slot=7, shard_id=0).to_dict()
        assert validate_event(sharded) == []

    def test_pace_epoch_adjusted_round_trips(self):
        from repro.obs.events import PaceEpochAdjusted

        event = PaceEpochAdjusted(
            ts_ns=3_000.0,
            epoch=2,
            old_interval_ns=500_000.0,
            new_interval_ns=250_000.0,
            high_marks=40,
            low_only=False,
            slots=64,
        ).to_dict()
        assert validate_event(event) == []

    def test_missing_and_extra_tick_fields_rejected(self):
        event = self.make_tick().to_dict()
        del event["queue_depth"]
        event["burst"] = 1
        errors = validate_event(event)
        assert any("queue_depth" in error for error in errors)
        assert any("burst" in error for error in errors)

    def test_service_completed_accepts_exact_pace_wait_phase(self):
        event = {
            "kind": "service_completed",
            "ts_ns": 10.0,
            "request_id": 1,
            "session_id": 1,
            "op": "get",
            "addr": 2,
            "status": "oram",
            "latency_ns": 100.0,
            "phases": {
                "admission_ns": 10.0,
                "sched_wait_ns": 20.0,
                "pace_wait_ns": 30.0,
                "service_ns": 40.0,
            },
        }
        assert validate_event(event) == []
        # The optional phase takes part in the exact-sum invariant.
        event["phases"]["pace_wait_ns"] = 31.0
        assert any("sum" in error for error in validate_event(event))
        # And traces from unpaced services simply omit it.
        del event["phases"]["pace_wait_ns"]
        event["phases"]["service_ns"] = 70.0
        assert validate_event(event) == []

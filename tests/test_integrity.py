"""Merkle integrity over the ORAM tree (extension).

Covers honest operation (no false alarms through a full PathOram
workload) and the three active-attack classes: content tampering,
bucket relocation/forgery, and subtree/root replay.
"""

from __future__ import annotations

import random

import pytest

from repro.config import small_test_config
from repro.extensions.integrity import IntegrityError, MerkleMemory
from repro.oram.blocks import Block, Bucket
from repro.oram.memory import UntrustedMemory
from repro.oram.path_oram import PathOram
from repro.oram.tree import TreeGeometry


def make_merkle(levels: int = 4, z: int = 4) -> MerkleMemory:
    return MerkleMemory(UntrustedMemory(TreeGeometry(levels), z))


def bucket_with(*addrs: int, leaf: int = 0) -> Bucket:
    bucket = Bucket(4)
    for addr in addrs:
        bucket.add(Block(addr, leaf, f"v{addr}"))
    return bucket


class TestHonestOperation:
    def test_write_then_read_verifies(self):
        merkle = make_merkle()
        merkle.write_bucket(7, bucket_with(1))
        bucket = merkle.read_bucket(7)
        assert bucket.find(1) is not None
        assert merkle.verified_reads == 1

    def test_untouched_nodes_read_clean(self):
        merkle = make_merkle()
        merkle.write_bucket(0, bucket_with(1))
        assert len(merkle.read_bucket(9)) == 0

    def test_root_hash_changes_on_every_write(self):
        merkle = make_merkle()
        merkle.write_bucket(3, bucket_with(1))
        first = merkle.root_hash
        merkle.write_bucket(4, bucket_with(2))
        assert merkle.root_hash != first

    def test_full_oram_workload_never_false_alarms(self):
        """Wire MerkleMemory under a real PathOram and run a workload:
        every read verifies, no alarms."""
        config = small_test_config(5)
        geometry = TreeGeometry(config.levels)
        inner = UntrustedMemory(geometry, config.bucket_slots)
        merkle = MerkleMemory(inner)
        oram = PathOram(config, rng=random.Random(1))
        oram.memory = merkle  # PathOram only needs read/write_bucket
        rng = random.Random(2)
        shadow = {}
        for step in range(200):
            addr = rng.randrange(config.num_blocks)
            if rng.random() < 0.5:
                shadow[addr] = step
                oram.write(addr, step)
            else:
                assert oram.read(addr) == shadow.get(addr)
        assert merkle.verified_reads > 0

    def test_verification_can_be_disabled(self):
        merkle = make_merkle()
        merkle.verify_on_read = False
        merkle.write_bucket(7, bucket_with(1))
        merkle.tamper_with_bucket(7)
        merkle.read_bucket(7)  # no alarm by design
        assert merkle.verified_reads == 0


class TestActiveAttacks:
    def test_content_tampering_detected(self):
        merkle = make_merkle()
        merkle.write_bucket(7, bucket_with(1))
        merkle.tamper_with_bucket(7)
        with pytest.raises(IntegrityError):
            merkle.read_bucket(7)

    def test_forged_block_in_untouched_bucket_detected(self):
        merkle = make_merkle()
        merkle.write_bucket(0, bucket_with(1))
        merkle.tamper_with_bucket(9)  # inject into never-written node
        with pytest.raises(IntegrityError):
            merkle.read_bucket(9)

    def test_replayed_bucket_detected(self):
        merkle = make_merkle()
        merkle.write_bucket(7, bucket_with(1))
        old_sealed = merkle.memory._store[7]
        merkle.write_bucket(7, bucket_with(2))
        merkle.rollback_bucket(7, old_sealed)
        with pytest.raises(IntegrityError):
            merkle.read_bucket(7)

    def test_relocated_bucket_detected(self):
        """Moving a valid bucket to a different node must fail: the
        digest binds the node id."""
        merkle = make_merkle()
        merkle.write_bucket(7, bucket_with(1))
        merkle.write_bucket(8, bucket_with(2))
        merkle.memory._store[8] = merkle.memory._store[7]
        merkle._hashes[8] = merkle._hashes[7]
        with pytest.raises(IntegrityError):
            merkle.read_bucket(8)

    def test_consistent_subtree_replay_caught_at_root(self):
        """Replay buckets AND hashes of a subtree consistently; the
        spine check must catch the mismatch against the trusted root."""
        merkle = make_merkle()
        merkle.write_bucket(7, bucket_with(1))
        snapshot_sealed = merkle.memory._store[7]
        snapshot_hashes = dict(merkle._hashes)
        merkle.write_bucket(7, bucket_with(2))
        # Adversary restores the old world entirely (except the trusted
        # root register inside the processor).
        merkle.memory._store[7] = snapshot_sealed
        merkle._hashes.clear()
        merkle._hashes.update(snapshot_hashes)
        with pytest.raises(IntegrityError):
            merkle.read_bucket(7)

    def test_truncated_hash_tree_detected(self):
        merkle = make_merkle()
        merkle.write_bucket(7, bucket_with(1))
        parent = merkle.geometry.parent(7)
        del merkle._hashes[parent]
        with pytest.raises(IntegrityError):
            merkle.read_bucket(7)

"""Address-queue hazards: the four rules of Section 4 plus the
one-in-flight-access-per-address invariant."""

from __future__ import annotations

import pytest

from repro.config import SchedulerConfig
from repro.core.address_queue import AddressQueue
from repro.core.requests import LlcRequest


def make_queue(size: int = 16) -> AddressQueue:
    return AddressQueue(SchedulerConfig(address_queue_size=size))


def read(addr: int, **kw) -> LlcRequest:
    return LlcRequest(addr=addr, is_write=False, **kw)


def write(addr: int, payload="w", **kw) -> LlcRequest:
    return LlcRequest(addr=addr, is_write=True, payload=payload, **kw)


class TestReadBeforeRead:
    def test_second_read_coalesces(self):
        queue = make_queue()
        first = read(5)
        second = read(5)
        assert queue.push(first, 0.0) == (True, [])
        queued, completed = queue.push(second, 1.0)
        assert not queued
        assert completed == []
        assert second.served_by == "coalesced"
        assert len(queue) == 1

    def test_coalesced_read_completes_with_primary(self):
        queue = make_queue()
        first, second = read(5), read(5)
        queue.push(first, 0.0)
        queue.push(second, 1.0)
        primary = queue.pop_issuable()
        assert primary is first
        first.value = "data"
        waiters = queue.on_complete(first)
        assert waiters == [second]

    def test_reads_to_different_addresses_are_independent(self):
        queue = make_queue()
        queue.push(read(1), 0.0)
        queue.push(read(2), 0.0)
        assert len(queue) == 2


class TestWriteBeforeRead:
    def test_read_forwards_from_queued_write(self):
        queue = make_queue()
        pending = write(5, payload="fresh")
        queue.push(pending, 0.0)
        reader = read(5)
        queued, completed = queue.push(reader, 1.0)
        assert not queued
        assert completed == [reader]
        assert reader.value == "fresh"
        assert reader.served_by == "forward"
        assert reader.complete_ns == 1.0

    def test_read_forwards_from_inflight_write(self):
        queue = make_queue()
        pending = write(5, payload="fresh")
        queue.push(pending, 0.0)
        assert queue.pop_issuable() is pending
        reader = read(5)
        _, completed = queue.push(reader, 2.0)
        assert completed == [reader]
        assert reader.value == "fresh"


class TestReadBeforeWrite:
    def test_write_blocked_by_inflight_read(self):
        queue = make_queue()
        reader = read(5)
        queue.push(reader, 0.0)
        assert queue.pop_issuable() is reader
        writer = write(5)
        queue.push(writer, 1.0)
        assert queue.pop_issuable() is None
        queue.on_complete(reader)
        assert queue.pop_issuable() is writer

    def test_blocked_write_does_not_block_other_addresses(self):
        queue = make_queue()
        reader = read(5)
        queue.push(reader, 0.0)
        queue.pop_issuable()
        queue.push(write(5), 1.0)
        other = write(6)
        queue.push(other, 1.0)
        assert queue.pop_issuable() is other


class TestWriteBeforeWrite:
    def test_queued_write_is_cancelled(self):
        queue = make_queue()
        stale = write(5, payload="stale")
        fresh = write(5, payload="fresh")
        queue.push(stale, 0.0)
        queued, completed = queue.push(fresh, 1.0)
        assert queued
        assert completed == [stale]
        assert stale.served_by == "cancelled"
        assert queue.cancelled_writes == 1
        assert len(queue) == 1

    def test_read_after_waw_forwards_newest_value(self):
        queue = make_queue()
        queue.push(write(5, payload="stale"), 0.0)
        queue.push(write(5, payload="fresh"), 1.0)
        reader = read(5)
        queue.push(reader, 2.0)
        assert reader.value == "fresh"

    def test_inflight_write_blocks_instead_of_cancelling(self):
        queue = make_queue()
        first = write(5, payload="a")
        queue.push(first, 0.0)
        assert queue.pop_issuable() is first
        second = write(5, payload="b")
        queued, completed = queue.push(second, 1.0)
        assert queued and completed == []
        assert queue.pop_issuable() is None  # waits for the in-flight
        queue.on_complete(first)
        assert queue.pop_issuable() is second


class TestOrderingAndState:
    def test_fifo_pop_across_addresses(self):
        queue = make_queue()
        requests = [read(1), write(2), read(3)]
        for index, request in enumerate(requests):
            queue.push(request, float(index))
        assert queue.pop_issuable() is requests[0]
        assert queue.pop_issuable() is requests[1]
        assert queue.pop_issuable() is requests[2]

    def test_not_ready_requests_are_skipped(self):
        queue = make_queue()
        waiting = read(1)
        waiting.ready = False
        ready = read(2)
        queue.push(waiting, 0.0)
        queue.push(ready, 1.0)
        assert queue.pop_issuable() is ready
        waiting.ready = True
        assert queue.pop_issuable() is waiting

    def test_occupancy_tracking(self):
        queue = make_queue(size=2)
        queue.push(read(1), 0.0)
        assert not queue.is_full()
        queue.push(read(2), 0.0)
        assert queue.is_full()
        assert queue.max_occupancy == 2
        queue.pop_issuable()
        assert not queue.is_full()
        assert queue.has_inflight()

    def test_single_inflight_per_address(self):
        """The invariant that makes scheduling reorder-safe."""
        queue = make_queue()
        queue.push(read(7), 0.0)
        queue.push(read(7), 0.1)  # coalesced
        first = queue.pop_issuable()
        queue.push(write(7), 0.2)  # blocked behind the read
        assert queue.pop_issuable() is None
        waiters = queue.on_complete(first)
        assert len(waiters) == 1
        writer = queue.pop_issuable()
        assert writer.is_write
        queue.push(write(7), 0.3)  # blocked behind in-flight write
        assert queue.pop_issuable() is None

"""Tests for ``repro.serve`` — the oblivious key-value service.

Covers the acceptance criteria of the service subsystem:

* wire protocol round-trip and malformed-input rejection;
* crash-safe :class:`FileBackend` persistence (torn-tail recovery,
  atomic compaction, reuse under ``UntrustedMemory``);
* deterministic fault injection and the retry policy's backoff math;
* the engine's request semantics (read-your-writes, stash hits,
  per-address waiter coalescing, exactly-once completion on permanent
  backend failure);
* a fault-injected four-client service run where every request is
  answered exactly once, the label queue is never observed underfull,
  and the emitted JSONL trace validates against the schema;
* the backend-observed bucket trace passing the statistical
  indistinguishability harness, and matching the label-sequence
  reconstruction exactly when faults are latency-only.

No pytest-asyncio in the CI image: async tests run via ``asyncio.run``
inside plain sync test functions.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.config import (
    CacheConfig,
    SchedulerConfig,
    ServiceConfig,
    SystemConfig,
    small_test_config,
)
from repro.errors import BackendError, ConfigError, ProtocolError, TransientBackendError
from repro.obs.schema import validate_lines
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.oram.encryption import CounterModeCipher
from repro.oram.memory import UntrustedMemory
from repro.oram.tree import TreeGeometry
from repro.security.adversary import (
    split_trace_into_accesses,
    verify_trace_matches_labels,
)
from repro.security.indistinguishability import (
    TraceProfile,
    adversary_advantage,
    leaf_distribution_pvalue,
    shape_distribution_pvalue,
)
from repro.serve import protocol
from repro.serve.backends import (
    FaultPlan,
    FaultyBackend,
    FileBackend,
    InMemoryBackend,
    available_backends,
    make_backend,
)
from repro.serve.engine import ObliviousEngine, RetryPolicy, ServeRequest
from repro.serve.loadgen import run_loadgen
from repro.serve.service import OramService


def serve_system(levels: int = 8, **service_kwargs: object) -> SystemConfig:
    """A small service configuration: L-level tree, queue of 8."""
    return SystemConfig(
        oram=small_test_config(levels, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
        service=ServiceConfig(**service_kwargs),  # type: ignore[arg-type]
    )


# --------------------------------------------------------------------- protocol


class TestProtocol:
    def test_frame_round_trip(self):
        message = {"id": 3, "op": "put", "addr": 9, "value": "x" * 100}
        frame = protocol.encode_frame(message)
        assert protocol.decode_body(frame[4:]) == message

    def test_oversized_frame_rejected_before_read(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data((1 << 25).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                await protocol.read_message(reader, max_frame_bytes=1 << 20)

        asyncio.run(scenario())

    def test_clean_eof_returns_none_mid_frame_raises(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            assert await protocol.read_message(reader) is None
            torn = asyncio.StreamReader()
            torn.feed_data(b"\x00\x00")
            torn.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_message(torn)

        asyncio.run(scenario())

    @pytest.mark.parametrize(
        "message",
        [
            {"op": "peek", "addr": 0},
            {"op": "get", "addr": "zero"},
            {"op": "get", "addr": -1},
            {"op": "get", "addr": 10**9},
            {"op": "put", "addr": 0},
            {"op": "get", "addr": 0, "value": "no"},
        ],
    )
    def test_invalid_requests_rejected(self, message):
        with pytest.raises(ProtocolError):
            protocol.validate_request(message, num_blocks=1024)


# --------------------------------------------------------------------- backends


class TestBackends:
    def test_registry_matches_config_contract(self, tmp_path):
        assert available_backends() == ("memory", "file", "faulty")
        for name in available_backends():
            config = ServiceConfig(
                backend=name,
                backend_path=str(tmp_path / "store.log") if name == "file" else "",
            )
            backend = make_backend(config)
            assert type(backend).name == name
            backend.close()

    def test_file_backend_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "store.log")
        backend = FileBackend(path)
        backend[3] = b"sealed-three"
        backend[7] = b"sealed-seven"
        backend[3] = b"sealed-three-v2"
        backend.close()

        reopened = FileBackend(path)
        assert reopened.recovered_records == 3  # last record per node wins
        assert not reopened.torn_tail
        assert reopened[3] == b"sealed-three-v2"
        assert reopened[7] == b"sealed-seven"
        assert sorted(reopened) == [3, 7]
        reopened.close()

    def test_backends_reject_non_bytes_sealed_values(self, tmp_path):
        # The sealed-value contract is bytes-only at the storage
        # boundary; the legacy NullCipher tuple form is rejected.
        backends = [
            InMemoryBackend(),
            FileBackend(str(tmp_path / "store.log")),
            FaultyBackend(InMemoryBackend()),
        ]
        for backend in backends:
            with pytest.raises(TypeError):
                backend[1] = (1, ((5, 2, "payload"),))
            with pytest.raises(TypeError):
                backend.put_many([(1, bytearray(b"x"))])
            backend.close()

    def test_file_backend_replays_legacy_pickled_records(self, tmp_path):
        # Logs written before the bytes-only contract may contain
        # pickled (tag=1) records; recovery must still read them.
        import pickle
        import struct
        import zlib

        path = str(tmp_path / "store.log")
        legacy = (1, ((5, 2, "payload"),))
        payload = pickle.dumps(legacy)
        frame = struct.Struct("<qIIB").pack(
            7, len(payload), zlib.crc32(payload), 1
        )
        with open(path, "wb") as handle:
            handle.write(frame + payload)
        backend = FileBackend(path)
        assert backend.recovered_records == 1
        assert backend[7] == legacy
        backend.close()

    def test_file_backend_recovers_from_torn_tail(self, tmp_path):
        path = str(tmp_path / "store.log")
        backend = FileBackend(path)
        backend[1] = b"alpha"
        backend[2] = b"beta"
        backend.close()
        # Simulate a crash mid-append: truncate into the final record.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)

        recovered = FileBackend(path)
        assert recovered.torn_tail
        assert recovered[1] == b"alpha"
        assert 2 not in recovered
        # The store keeps working after recovery.
        recovered[2] = b"beta-again"
        recovered.close()
        final = FileBackend(path)
        assert final[2] == b"beta-again"
        final.close()

    def test_file_backend_compaction_is_atomic_and_lossless(self, tmp_path):
        path = str(tmp_path / "store.log")
        backend = FileBackend(path)
        for round_no in range(5):
            for node in range(4):
                backend[node] = f"r{round_no}-n{node}".encode()
        assert backend.records_appended == 20
        backend.sync()
        size_before = os.path.getsize(path)
        backend.compact()
        assert os.path.getsize(path) < size_before
        assert backend.records_appended == 4
        assert {node: backend[node] for node in backend} == {
            node: f"r4-n{node}".encode() for node in range(4)
        }
        backend.close()
        reopened = FileBackend(path)
        assert reopened.recovered_records == 4
        reopened.close()

    def test_untrusted_memory_over_file_backend_round_trips(self, tmp_path):
        """The duck-typed seam: the simulator's memory over persistence."""
        path = str(tmp_path / "tree.log")
        geometry = TreeGeometry(4)
        oram = small_test_config(4)
        cipher = CounterModeCipher(key=b"k" * 16, block_bytes=16)
        backend = FileBackend(path)
        memory = UntrustedMemory(geometry, oram.bucket_slots, cipher, backend=backend)
        from repro.oram.blocks import Block

        hello = b"hello".ljust(16, b"\x00")
        world = b"world".ljust(16, b"\x00")
        memory.write_blocks(5, [Block(1, 2, hello), Block(2, 3, world)])
        backend.close()

        memory2 = UntrustedMemory(
            geometry, oram.bucket_slots, cipher, backend=FileBackend(path)
        )
        payloads = {b.addr: b.payload for b in memory2.read_blocks(5)}
        assert payloads == {1: hello, 2: world}

    def test_faulty_backend_is_deterministic_and_key_independent(self):
        def error_pattern(keys):
            backend = FaultyBackend(
                InMemoryBackend(), FaultPlan(error_rate=0.4, seed=11)
            )
            pattern = []
            for key in keys:
                try:
                    backend.get(key)
                    pattern.append(False)
                except TransientBackendError:
                    pattern.append(True)
            return pattern

        # Same seed, same op sequence -> same faults, whatever the keys.
        assert error_pattern(range(50)) == error_pattern([0] * 50)
        assert any(error_pattern(range(50)))

    def test_faulty_backend_records_every_attempt(self):
        backend = FaultyBackend(InMemoryBackend(), FaultPlan(error_rate=0.5, seed=3))
        attempts = 0
        for _ in range(20):
            attempts += 1
            try:
                backend[0] = b"x"
                break
            except TransientBackendError:
                continue
        assert len(backend.trace.events) == attempts
        assert backend.errors_injected == attempts - 1

    def test_delete_is_rejected(self):
        backend = InMemoryBackend()
        backend[0] = b"x"
        with pytest.raises(BackendError):
            del backend[0]

    def test_file_backend_flushes_each_append(self, tmp_path):
        """Without any explicit sync(), every appended record must
        already have reached the OS — a process crash loses at most the
        record being written."""
        path = str(tmp_path / "store.log")
        backend = FileBackend(path)
        backend[1] = b"alpha"
        assert os.path.getsize(path) == len(FileBackend._encode(1, b"alpha"))
        backend.close()

    def test_file_backend_requires_path(self):
        with pytest.raises(ConfigError):
            make_backend(ServiceConfig(backend="file"))


# ----------------------------------------------------------------- retry policy


class TestRetryPolicy:
    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=6, base_ns=100.0, max_ns=1000.0)
        assert [policy.backoff_ns(k) for k in range(1, 6)] == [
            100.0,
            200.0,
            400.0,
            800.0,
            1000.0,
        ]

    def test_store_retries_then_raises_backend_error(self):
        config = serve_system(
            levels=4,
            backend="faulty",
            retry_attempts=3,
            retry_base_ns=1000.0,
            fault_error_rate=0.97,
            fault_seed=5,
        )
        engine = ObliviousEngine(config, make_backend(config.service))

        async def scenario():
            with pytest.raises(BackendError):
                for _ in range(40):  # p(3 clean ops in a row) ~ 2.7e-5
                    await engine.store.read_blocks(0)

        asyncio.run(scenario())
        assert engine.store.retries > 0
        assert engine.store.failures == 1

    def test_timeout_counts_as_transient(self):
        config = serve_system(
            levels=4,
            backend="faulty",
            retry_attempts=2,
            retry_base_ns=1000.0,
            op_timeout_ns=2_000_000.0,  # 2 ms
            fault_stall_rate=0.99,
            fault_stall_ns=300_000_000.0,
        )
        engine = ObliviousEngine(config, make_backend(config.service))

        async def scenario():
            with pytest.raises(BackendError) as excinfo:
                await engine.store.read_blocks(0)
            assert "timed out" in str(excinfo.value)

        asyncio.run(scenario())


# -------------------------------------------------------------------- engine


class FlakyWriteBackend(InMemoryBackend):
    """Every async write fails transiently while ``fail_writes`` is set."""

    def __init__(self):
        super().__init__()
        self.fail_writes = False

    async def aput(self, node_id, sealed):
        if self.fail_writes:
            raise TransientBackendError("injected write failure")
        await super().aput(node_id, sealed)


class RootWriteFailingBackend(InMemoryBackend):
    """Writes of the root bucket fail transiently while ``arm`` is set.

    The root is written last in the write-back loop, so by then the
    stash's eligible blocks have been collected — exactly the state
    where a buggy failure path would lose them.
    """

    def __init__(self):
        super().__init__()
        self.arm = False

    async def aput(self, node_id, sealed):
        if self.arm and node_id == 0:
            raise TransientBackendError("injected root write failure")
        await super().aput(node_id, sealed)


class FailingReadBackend(InMemoryBackend):
    """Every async read fails transiently."""

    async def aget(self, node_id):
        raise TransientBackendError("injected read failure")


def drain(engine: ObliviousEngine) -> None:
    """Run accesses until no real work remains (bounded)."""

    async def loop():
        for _ in range(500):
            if not engine.has_pending_real():
                return
            await engine.run_access()
        raise AssertionError("engine did not drain in 500 accesses")

    asyncio.run(loop())


def submit(engine: ObliviousEngine, op: str, addr: int, value=None) -> ServeRequest:
    request = ServeRequest(op=op, addr=addr, value=value)
    assert engine.submit(request)
    return request


class TestEngine:
    def test_read_your_writes_and_stash_hits(self):
        config = serve_system(levels=6)
        engine = ObliviousEngine(config, InMemoryBackend())
        put = submit(engine, "put", 17, "v1")
        drain(engine)
        assert put.status in ("oram", "stash")
        # The block now sits in the stash: a get completes on-chip.
        get = submit(engine, "get", 17)
        assert get.status == "stash"
        assert (get.found, get.result) == (True, "v1")
        assert get.phases()["sched_wait_ns"] == 0.0  # never queued

    def test_get_of_never_written_address_not_found(self):
        engine = ObliviousEngine(serve_system(levels=6), InMemoryBackend())
        get = submit(engine, "get", 42)
        drain(engine)
        assert (get.status, get.found, get.result) == ("oram", False, None)

    def test_same_address_requests_coalesce_in_order(self):
        engine = ObliviousEngine(serve_system(levels=6), InMemoryBackend())
        first = submit(engine, "put", 5, "a")
        second = submit(engine, "put", 5, "b")
        third = submit(engine, "get", 5)
        drain(engine)
        assert first.status == "oram"
        assert second.status == "coalesced"
        assert (third.status, third.result) == ("coalesced", "b")
        assert engine.real_accesses == 1  # one tree access served all three

    def test_delete_removes_block(self):
        engine = ObliviousEngine(serve_system(levels=6), InMemoryBackend())
        submit(engine, "put", 9, "gone")
        drain(engine)
        deleted = submit(engine, "delete", 9)
        assert deleted.found
        drain(engine)
        after = submit(engine, "get", 9)
        drain(engine)
        assert not after.found

    def test_permanent_backend_failure_fails_request_exactly_once(self):
        config = serve_system(
            levels=5,
            backend="faulty",
            retry_attempts=2,
            retry_base_ns=1000.0,
            fault_error_rate=0.9,
            fault_seed=2,
        )
        engine = ObliviousEngine(config, make_backend(config.service))
        request = submit(engine, "get", 3)

        async def loop():
            for _ in range(200):
                if request.status:
                    return
                await engine.run_access()

        asyncio.run(loop())
        assert request.status in ("failed", "oram")
        if request.status == "failed":
            assert request.error
            assert engine.failed_accesses > 0
        # Either way the engine keeps serving afterwards.
        assert engine.completed_requests == 1

    def test_submit_refuses_when_label_queue_saturated(self):
        config = serve_system(levels=6)
        engine = ObliviousEngine(config, InMemoryBackend())
        admitted = 0
        for addr in range(config.scheduler.label_queue_size + 4):
            if engine.submit(ServeRequest(op="put", addr=1000 + addr, value="x")):
                admitted += 1
        assert admitted == config.scheduler.label_queue_size
        drain(engine)

    def test_phase_chain_is_monotone_and_sums_to_latency(self):
        engine = ObliviousEngine(serve_system(levels=6), InMemoryBackend())
        request = submit(engine, "put", 2, "v")
        drain(engine)
        phases = request.phases()
        assert all(value >= 0 for value in phases.values())
        assert sum(phases.values()) == pytest.approx(request.latency_ns)

    def test_write_failure_requeues_popped_next_entry(self):
        """A write-back failure must not discard the already-selected
        next entry: its request still resolves (no wedged ``_inflight``
        address, no client hanging forever)."""
        config = SystemConfig(
            oram=small_test_config(5, block_bytes=64),
            scheduler=SchedulerConfig(label_queue_size=8, enable_scheduling=False),
            cache=CacheConfig(policy="none"),
            service=ServiceConfig(retry_attempts=2, retry_base_ns=1000.0),
        )
        backend = FlakyWriteBackend()
        backend.fail_writes = True
        engine = ObliviousEngine(config, backend)
        first = submit(engine, "put", 1, "a")
        second = submit(engine, "put", 2, "b")
        drain(engine)
        assert first.status == "oram"
        assert second.status == "oram"
        assert engine.completed_requests == 2
        assert engine._inflight == {}
        assert engine.failed_accesses > 0

    def test_write_failure_does_not_lose_stash_blocks(self):
        """Blocks collected for a bucket write that fails past the retry
        budget go back into the stash — no address loses data."""
        # Merging off: every access writes the whole path down to the
        # root, so the armed backend fails each access at its very last
        # write, after all deeper buckets were collected and written.
        config = SystemConfig(
            oram=small_test_config(5, block_bytes=64),
            scheduler=SchedulerConfig(label_queue_size=8, enable_merging=False),
            cache=CacheConfig(policy="none"),
            service=ServiceConfig(retry_attempts=2, retry_base_ns=1000.0),
        )
        backend = RootWriteFailingBackend()
        engine = ObliviousEngine(config, backend)
        for addr in range(8):
            submit(engine, "put", addr, f"v{addr}")
            drain(engine)
        backend.arm = True
        for addr in range(8):
            victim = submit(engine, "get", addr)
            drain(engine)
            assert victim.status in ("stash", "oram")
        assert engine.failed_accesses > 0
        backend.arm = False
        for addr in range(8):
            check = submit(engine, "get", addr)
            drain(engine)
            assert (check.found, check.result) == (True, f"v{addr}")

    def test_read_failure_restores_position_map(self):
        """A request failed before being served leaves the position map
        pointing at the path the block still lives on, so a later access
        for the same address reads the right path."""
        config = serve_system(levels=5, retry_attempts=2, retry_base_ns=1000.0)
        engine = ObliviousEngine(config, FailingReadBackend())
        old_leaf = engine.posmap.lookup(3)
        request = submit(engine, "get", 3)

        async def loop():
            for _ in range(50):
                if request.status:
                    return
                await engine.run_access()

        asyncio.run(loop())
        assert request.status == "failed"
        assert engine.posmap.lookup(3) == old_leaf
        assert engine._inflight == {}

    def test_session_histogram_keys_are_bounded(self):
        from repro.serve.engine import SESSION_HISTOGRAM_CAP

        tracer = Tracer()
        engine = ObliviousEngine(
            serve_system(levels=5), InMemoryBackend(), tracer=tracer
        )
        assert engine.submit(ServeRequest(op="put", addr=1, value="x", session_id=0))
        drain(engine)
        # Stash hits complete synchronously, one distinct session each.
        for session_id in range(1, SESSION_HISTOGRAM_CAP + 50):
            assert engine.submit(
                ServeRequest(op="get", addr=1, session_id=session_id)
            )
        session_keys = [
            name
            for name in tracer.histograms
            if name.startswith("serve.session.")
        ]
        assert len(session_keys) == SESSION_HISTOGRAM_CAP


# -------------------------------------------------------------------- service


def run_service_scenario(
    config: SystemConfig,
    clients: int = 4,
    requests: int = 20,
    tracer: Tracer | None = None,
    backend=None,
):
    """Start a service, drive it with the loadgen, stop it."""

    async def scenario():
        service = OramService(config, backend=backend, tracer=tracer)
        host, port = await service.start()
        result = await run_loadgen(
            host,
            port,
            clients=clients,
            requests=requests,
            num_blocks=config.oram.num_blocks,
            seed=13,
        )
        await service.stop()
        return service, result

    return asyncio.run(scenario())


class TestService:
    def test_faulty_four_client_run_loses_nothing(self):
        """The headline acceptance test: fault-injected concurrent load,
        every request answered exactly once, queue never underfull,
        trace schema-valid."""
        ring = RingBufferSink(capacity=100_000)
        tracer = Tracer(sinks=[ring])
        config = serve_system(
            levels=7,
            backend="faulty",
            fault_error_rate=0.05,
            fault_jitter_ns=2_000.0,
            retry_base_ns=100_000.0,
            fault_seed=23,
        )
        service, result = run_service_scenario(
            config, clients=4, requests=20, tracer=tracer
        )

        assert result.sent == 80
        assert result.lost == 0
        assert result.completed == 80
        assert result.failed == 0
        assert result.mismatches == 0
        assert service.engine.underfull_rounds == 0
        assert service.backend.errors_injected > 0
        assert service.engine.store.retries >= service.backend.errors_injected

        # Exactly-once, cross-checked from the trace itself.
        events = [event.to_dict() for event in ring.events]
        completed_ids = [
            event["request_id"]
            for event in events
            if event["kind"] == "service_completed"
        ]
        assert len(completed_ids) == len(set(completed_ids)) == 80
        admitted_ids = {
            event["request_id"]
            for event in events
            if event["kind"] == "service_admitted"
        }
        assert set(completed_ids) == admitted_ids
        sessions = [e for e in events if e["kind"] == "session_closed"]
        assert sum(e["requests"] for e in sessions) == 80
        assert any(e["kind"] == "backend_retry" for e in events)

        # The full event stream validates against the JSONL schema.
        lines = [json.dumps(event) for event in events]
        assert validate_lines(lines) == []

    def test_memory_backend_run_and_per_session_histograms(self):
        tracer = Tracer()
        config = serve_system(levels=6)
        service, result = run_service_scenario(
            config, clients=2, requests=15, tracer=tracer
        )
        assert (result.lost, result.mismatches) == (0, 0)
        session_histograms = [
            name
            for name, histogram in tracer.histograms.items()
            if name.startswith("serve.session.") and histogram.count > 0
        ]
        assert len(session_histograms) == 2  # one latency histogram per client

    def test_malformed_request_gets_error_response_session_survives(self):
        async def scenario():
            service = OramService(serve_system(levels=5))
            host, port = await service.start()
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_message(
                writer, {"id": 1, "op": "frob", "addr": 1}
            )
            bad = await protocol.read_message(reader)
            await protocol.write_message(
                writer, {"id": 2, "op": "put", "addr": 1, "value": "ok"}
            )
            good = await protocol.read_message(reader)
            writer.close()
            await writer.wait_closed()
            await service.stop()
            return bad, good

        bad, good = asyncio.run(scenario())
        assert (bad["id"], bad["ok"]) == (1, False)
        assert "op" in bad["error"]
        assert (good["id"], good["ok"]) == (2, True)

    def test_admission_backpressure_bounds_engine_queue(self):
        """A tiny admission queue + saturated label queue must never
        admit more than capacity holds; the rest waits in the socket."""
        config = serve_system(levels=6, admission_capacity=2)
        service, result = run_service_scenario(config, clients=3, requests=10)
        assert (result.lost, result.mismatches) == (0, 0)
        assert service.engine.underfull_rounds == 0


# ------------------------------------------------------------------- security


def traced_service_run(workload: str, seed: int, requests: int = 25, error_rate: float = 0.0):
    """One 4-client service run over a trace-recording FaultyBackend.

    ``workload`` contrasts a skewed program against a uniform one —
    the classic indistinguishability experiment, now end-to-end over
    TCP with fault injection at the storage server.
    """
    config = serve_system(
        levels=7,
        backend="faulty",
        retry_base_ns=50_000.0,
        fault_seed=seed,
    )
    backend = FaultyBackend(
        InMemoryBackend(), FaultPlan(error_rate=error_rate, seed=seed)
    )

    async def client(host, port, index, rng):
        reader, writer = await asyncio.open_connection(host, port)
        for sequence in range(requests):
            if workload == "hot":
                addr = rng.randrange(4)  # four hot addresses
            else:
                addr = rng.randrange(config.oram.num_blocks)
            op = "put" if sequence % 2 == 0 else "get"
            message = {"id": sequence, "op": op, "addr": addr}
            if op == "put":
                message["value"] = f"w{index}-{sequence}"
            await protocol.write_message(writer, message)
            response = await protocol.read_message(reader)
            assert response is not None and response["ok"]
        writer.close()
        await writer.wait_closed()

    async def scenario():
        import random

        service = OramService(config, backend=backend)
        host, port = await service.start()
        await asyncio.gather(
            *(client(host, port, i, random.Random(seed * 100 + i)) for i in range(4))
        )
        await service.stop()
        return service

    service = asyncio.run(scenario())
    leaves = [record[0] for record in service.engine.records]
    chunks = split_trace_into_accesses(service.engine.geometry, backend.trace.events)
    shapes = [
        (
            sum(1 for e in chunk if e.op.value == "read"),
            sum(1 for e in chunk if e.op.value == "write"),
        )
        for chunk in chunks
    ]
    return service, TraceProfile(
        leaves=leaves, shapes=shapes, num_leaves=service.engine.geometry.num_leaves
    )


class TestServedTraceSecurity:
    @pytest.fixture(scope="class")
    def served_profiles(self):
        _, hot = traced_service_run("hot", seed=31, requests=60, error_rate=0.02)
        _, uniform = traced_service_run(
            "uniform", seed=32, requests=60, error_rate=0.02
        )
        return hot, uniform

    def test_backend_trace_is_indistinguishable(self, served_profiles):
        hot, uniform = served_profiles
        assert leaf_distribution_pvalue(hot, uniform) > 0.001
        assert shape_distribution_pvalue(hot, uniform) > 0.001
        assert adversary_advantage(hot, uniform, trials=400) < 0.15

    def test_backend_trace_matches_label_reconstruction(self):
        """With a quiescent fault plan (no retries) the bucket trace must
        equal the deterministic reconstruction from the public label
        sequence — the executable form of the paper's security
        argument, now measured at the storage server."""
        service, _profile = traced_service_run("hot", seed=33)
        leaves = [record[0] for record in service.engine.records]
        verify_trace_matches_labels(
            service.engine.geometry,
            service.engine.store.backend.trace.events,
            leaves,
        )


# ----------------------------------------------------------------------- CLI


class TestCli:
    def test_info_lists_backends_and_subcommands(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "service backends: memory, file, faulty" in out
        assert "serve" in out and "loadgen" in out

    def test_service_config_overrides_parse(self):
        config = SystemConfig.from_overrides(
            {
                "service.backend": "faulty",
                "service.fault_error_rate": "0.25",
                "service.admission_capacity": "16",
            }
        )
        assert config.service.backend == "faulty"
        assert config.service.fault_error_rate == 0.25
        assert config.service.admission_capacity == 16

    def test_bad_backend_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(backend="cloud")


# -------------------------------------------------------------------- pacing


class TestPacedPhases:
    """Phase accounting stays exact when the paced turn loop drives the
    engine: every ``service_completed`` breakdown (now including the
    optional ``pace_wait_ns``) sums to ``latency_ns`` to the digit."""

    def run_paced(self, arrival: str = "closed"):
        from repro.config import PaceConfig

        ring = RingBufferSink(capacity=100_000)
        tracer = Tracer(sinks=[ring])
        config = serve_system(levels=6).replace(
            pace=PaceConfig(mode="fixed", interval_ns=300_000.0)
        )

        async def scenario():
            service = OramService(config, tracer=tracer)
            host, port = await service.start()
            result = await run_loadgen(
                host,
                port,
                clients=3,
                requests=15,
                num_blocks=config.oram.num_blocks,
                seed=17,
                arrival=arrival,
                rate=500.0,
            )
            await service.stop()
            return service, result

        service, result = asyncio.run(scenario())
        assert (result.lost, result.failed, result.mismatches) == (0, 0, 0)
        return service, [event.to_dict() for event in ring.events]

    def test_paced_completions_sum_exactly_and_validate(self):
        from repro.obs.schema import phase_sum_tolerance

        service, events = self.run_paced()
        completions = [
            event for event in events if event["kind"] == "service_completed"
        ]
        assert len(completions) == 45
        paced_waits = 0
        for event in completions:
            phases = event["phases"]
            assert all(value >= 0.0 for value in phases.values())
            assert sum(phases.values()) == pytest.approx(
                event["latency_ns"], abs=phase_sum_tolerance(event["latency_ns"])
            )
            if phases.get("pace_wait_ns", 0.0) > 0.0:
                paced_waits += 1
        # Queued requests spend real time waiting on the pacer clock,
        # and that time is carved out of sched_wait_ns, not invented.
        assert paced_waits > 0
        assert service.pacer is not None and service.pacer.slots > 0
        lines = [json.dumps(event) for event in events]
        assert validate_lines(lines) == []

    def test_open_loop_arrivals_keep_exactly_once(self):
        service, events = self.run_paced(arrival="poisson")
        completed = [
            event["request_id"]
            for event in events
            if event["kind"] == "service_completed"
        ]
        assert len(completed) == len(set(completed)) == 45

"""Static super blocks (Ren et al.) — the prefetching extension."""

from __future__ import annotations

import random

import pytest

from repro.config import (
    CacheConfig,
    OramConfig,
    SchedulerConfig,
    SystemConfig,
)
from repro.core.controller import ForkPathController
from repro.errors import ConfigError
from repro.workloads.synthetic import strided_trace, hotspot_trace
from repro.workloads.trace import TraceSource, make_trace


def build(super_log2: int, levels: int = 10) -> SystemConfig:
    return SystemConfig(
        oram=OramConfig(
            levels=levels,
            block_bytes=16,
            stash_capacity=400,
            super_block_log2=super_log2,
        ),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
    )


def run(config: SystemConfig, trace):
    source = TraceSource(trace)
    controller = ForkPathController(config, source, rng=random.Random(9))
    metrics = controller.run()
    return controller, source, metrics


class TestConfig:
    def test_group_arithmetic(self):
        config = OramConfig(levels=6, super_block_log2=2)
        assert config.super_block_size == 4
        assert config.group_of(7) == 1
        assert config.group_base(7) == 4

    def test_bounds(self):
        with pytest.raises(ConfigError):
            OramConfig(levels=6, super_block_log2=9)
        with pytest.raises(ConfigError):
            OramConfig(levels=6, super_block_log2=-1)


class TestCorrectness:
    @pytest.mark.parametrize("super_log2", [1, 2, 3])
    def test_replay_semantics(self, super_log2):
        trace = hotspot_trace(400, 120, 150.0, random.Random(5))
        _, source, _ = run(build(super_log2), trace)
        latest: dict[int, object] = {}
        for request in sorted(source.completed, key=lambda r: r.arrival_ns):
            if request.is_write:
                latest[request.addr] = request.payload
            else:
                assert request.value == latest.get(request.addr)

    def test_group_siblings_share_a_leaf(self):
        """The invariant grouping rests on: all live blocks of a group
        carry the same label."""
        trace = hotspot_trace(300, 64, 150.0, random.Random(6))
        controller, _, _ = run(build(2), trace)
        oram = controller.config.oram
        labels: dict[int, set] = {}
        blocks = list(controller.stash.blocks())
        for node in controller.memory.materialised_nodes():
            blocks.extend(controller.memory.peek_bucket(node))
        for block in blocks:
            labels.setdefault(oram.group_of(block.addr), set()).add(block.leaf)
        for group, leaves in labels.items():
            assert len(leaves) == 1, f"group {group} split across {leaves}"


class TestPrefetchBenefit:
    def test_sequential_workload_coalesces_on_group_loads(self):
        """Streaming accesses inside a group complete off one path load
        — Ren et al.'s locality win ("one path load may fulfill
        several requests")."""
        # Write everything once, then stream reads over it.
        writes = [(100.0 * (i + 1), i, True) for i in range(256)]
        base_t = 100.0 * 257
        reads = [(base_t + 100.0 * i, i, False) for i in range(256)]
        trace = make_trace(writes + reads)
        controller, source, grouped = run(build(3), trace)
        trace2 = make_trace(writes + reads)
        _, _, plain = run(build(0), trace2)
        assert controller.address_queue.group_coalesced_reads > 50
        assert grouped.total_accesses < plain.total_accesses * 0.7

    def test_random_workload_not_hurt(self):
        trace = hotspot_trace(300, 2000, 150.0, random.Random(2))
        _, _, plain = run(build(0), trace)
        trace2 = hotspot_trace(300, 2000, 150.0, random.Random(2))
        _, _, grouped = run(build(2), trace2)
        assert grouped.real_completed == plain.real_completed

"""Functional hierarchical (recursive) Path ORAM."""

from __future__ import annotations

import random

import pytest

from repro.config import RecursionConfig, small_test_config
from repro.errors import ProtocolError
from repro.oram.recursion import RecursiveOram


def make_oram(levels: int = 8, labels_per_block: int = 4,
              onchip_bytes: int = 64) -> RecursiveOram:
    return RecursiveOram(
        small_test_config(levels),
        RecursionConfig(
            enabled=True,
            labels_per_block=labels_per_block,
            onchip_posmap_bytes=onchip_bytes,
        ),
        rng=random.Random(3),
    )


class TestFunctional:
    def test_read_your_writes(self):
        oram = make_oram()
        oram.write(7, "v")
        assert oram.read(7) == "v"

    def test_many_addresses(self):
        oram = make_oram()
        for addr in range(0, 200, 7):
            oram.write(addr, addr * 3)
        for addr in range(0, 200, 7):
            assert oram.read(addr) == addr * 3

    def test_unwritten_reads_none(self):
        assert make_oram().read(5) is None

    def test_random_workload_matches_dict(self):
        oram = make_oram()
        rng = random.Random(17)
        shadow: dict[int, int] = {}
        for step in range(500):
            addr = rng.randrange(250)
            if rng.random() < 0.5:
                shadow[addr] = step
                oram.write(addr, step)
            else:
                assert oram.read(addr) == shadow.get(addr)

    def test_address_bounds(self):
        oram = make_oram()
        with pytest.raises(ProtocolError):
            oram.read(oram.space.num_data_blocks)


class TestHierarchyMechanics:
    def test_recursion_depth_positive(self):
        oram = make_oram()
        assert oram.space.depth >= 2

    def test_each_request_walks_the_chain(self):
        oram = make_oram()
        oram.write(1, "v")
        # chain elements either hit the stash or cost one access each.
        expected = oram.space.accesses_per_request()
        assert oram.stats.oram_accesses + oram.stats.stash_hits == expected
        assert oram.stats.requests == 1

    def test_posmap_blocks_live_in_the_same_tree(self):
        """Unified address space: PosMap blocks are ordinary blocks of
        the one tree (Figure 2b)."""
        oram = make_oram()
        for addr in range(0, 40, 3):
            oram.write(addr, addr)
        posmap_blocks = [
            block
            for block in oram.stash.blocks()
            if oram.space.is_posmap_addr(block.addr)
        ]
        tree_posmap = 0
        for node in oram.memory.materialised_nodes():
            for block in oram.memory.peek_bucket(node):
                if oram.space.is_posmap_addr(block.addr):
                    tree_posmap += 1
        assert posmap_blocks or tree_posmap

    def test_posmap_payloads_hold_child_labels(self):
        oram = make_oram()
        oram.write(1, "v")
        found_label_map = False
        candidates = list(oram.stash.blocks())
        for node in oram.memory.materialised_nodes():
            candidates.extend(oram.memory.peek_bucket(node))
        for block in candidates:
            if oram.space.is_posmap_addr(block.addr) and block.payload:
                assert isinstance(block.payload, dict)
                for child, label in block.payload.items():
                    assert 0 <= label < oram.geometry.num_leaves
                found_label_map = True
        assert found_label_map

    def test_leaf_sequence_grows_with_accesses(self):
        oram = make_oram()
        for addr in range(10):
            oram.write(addr, addr)
        assert len(oram.stats.leaf_sequence) == oram.stats.oram_accesses

    def test_accesses_per_request_reported(self):
        oram = make_oram()
        for addr in range(30):
            oram.write(addr, addr)
        assert oram.stats.accesses_per_request == pytest.approx(
            oram.space.accesses_per_request()
        )

    def test_stash_resident_chain_element_skips_path_access(self):
        """Move the data block from its tree bucket into the stash (a
        state the protocol itself can reach); the next request's data
        element must then hit the stash instead of walking a path."""
        # Depth-0 layout isolates the data element: no PosMap chain
        # accesses can evict the staged block before it is looked up.
        oram = make_oram(onchip_bytes=1 << 20)
        assert oram.space.depth == 0
        oram.write(1, "v")
        if oram.stash.get(1) is None:
            for node in oram.memory.materialised_nodes():
                bucket = oram.memory.peek_bucket(node)
                block = bucket.find(1)
                if block is not None:
                    bucket.blocks.remove(block)
                    oram.memory.write_bucket(node, bucket)
                    oram.stash.add(block)
                    break
        assert oram.stash.get(1) is not None
        hits_before = oram.stats.stash_hits
        accesses_before = oram.stats.oram_accesses
        assert oram.read(1) == "v"
        assert oram.stats.stash_hits >= hits_before + 1
        # The data element cost no path access, only the PosMap chain.
        assert oram.stats.oram_accesses - accesses_before <= oram.space.depth

"""Tests for ``repro.cluster`` — the sharded oblivious service.

Covers the cluster subsystem's acceptance criteria:

* residue striping (:class:`AddressPartitioner`) and the public
  per-shard config derivations (tree depth, label-queue split, seed
  offsets);
* a multi-client TCP round-trip through :class:`ClusterService` where
  every request is answered exactly once and every shard executes the
  same number of (dummy-padded) accesses;
* cross-shard obliviousness, both exactly — the interleaved shard-visit
  + bucket trace of a sequential (``rr``) run under *skewed* traffic is
  reconstructed from public labels alone — and statistically: per-shard
  trace profiles under skewed vs uniform traffic are indistinguishable;
* shard-tagged observability events validating against the JSONL
  schema, with ``shard_id`` optional so single-engine traces are
  unchanged;
* the satellite work riding along: the table-driven backend registry,
  the engine-side compaction trigger, and the batch simulator running
  over a persistent ``FileBackend`` (torn-tail recovery included).

No pytest-asyncio in the CI image: async tests run via ``asyncio.run``
inside plain sync test functions.
"""

from __future__ import annotations

import asyncio
import json
import os
import random

import pytest

from repro.config import (
    CacheConfig,
    ClusterConfig,
    SchedulerConfig,
    ServiceConfig,
    SystemConfig,
    small_test_config,
)
from repro.cluster import (
    AddressPartitioner,
    ClusterService,
    ShardRouter,
    shard_levels,
    shard_system_config,
)
from repro.errors import ConfigError
from repro.obs.events import ServiceCompleted
from repro.obs.schema import validate_lines
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.oram.encryption import CounterModeCipher
from repro.oram.memory import UntrustedMemory
from repro.oram.path_oram import PathOram
from repro.oram.tree import TreeGeometry
from repro.security import (
    InterleavedTraceRecorder,
    adversary_advantage,
    leaf_distribution_pvalue,
    shape_distribution_pvalue,
    shard_profile,
    verify_interleaved_cluster_trace,
    verify_shard_balance,
    verify_visit_schedule,
)
from repro.serve import protocol
from repro.serve.backends import (
    BACKEND_FACTORIES,
    FaultPlan,
    FaultyBackend,
    FileBackend,
    InMemoryBackend,
    available_backends,
    make_backend,
    register_backend,
    shard_service_config,
)
from repro.serve.engine import ObliviousEngine, ServeRequest
from repro.serve.loadgen import run_loadgen


def cluster_system(
    levels: int = 6,
    shards: int = 4,
    dispatch: str = "rr",
    queue: int = 8,
    **service_kwargs: object,
) -> SystemConfig:
    """A small cluster configuration: K shards over an L-level space."""
    return SystemConfig(
        oram=small_test_config(levels, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=queue),
        cache=CacheConfig(policy="none"),
        service=ServiceConfig(**service_kwargs),  # type: ignore[arg-type]
        cluster=ClusterConfig(shards=shards, dispatch=dispatch),
    )


# ---------------------------------------------------------------- partitioning


class TestAddressPartitioner:
    def test_locate_round_trips_and_stripes_by_residue(self):
        part = AddressPartitioner(num_blocks=103, shards=4)
        for addr in range(103):
            shard, local = part.locate(addr)
            assert shard == addr % 4
            assert local == addr // 4
            assert part.global_of(shard, local) == addr

    def test_capacities_partition_the_address_space(self):
        for blocks, shards in ((100, 4), (101, 4), (7, 7), (1, 1), (9, 2)):
            part = AddressPartitioner(blocks, shards)
            caps = [part.shard_capacity(s) for s in range(shards)]
            assert sum(caps) == blocks
            assert max(caps) - min(caps) <= 1
            # Striping puts the leftovers on the lowest shard ids.
            assert caps == sorted(caps, reverse=True)

    def test_invalid_partitions_rejected(self):
        with pytest.raises(ConfigError):
            AddressPartitioner(num_blocks=3, shards=4)
        with pytest.raises(ConfigError):
            AddressPartitioner(num_blocks=0, shards=1)
        with pytest.raises(ConfigError):
            AddressPartitioner(num_blocks=8, shards=0)
        with pytest.raises(ConfigError):
            AddressPartitioner(8, 2).shard_capacity(2)


class TestShardConfig:
    def test_shard_trees_shrink_about_one_level_per_doubling(self):
        oram = small_test_config(10, num_blocks=2000)
        cluster = ClusterConfig()
        # Capacity at depth L is (2^(L+1) - 1) * Z * utilization.
        assert shard_levels(2000, oram, cluster) == 9
        assert shard_levels(1000, oram, cluster) == 8
        assert shard_levels(500, oram, cluster) == 7
        assert shard_levels(250, oram, cluster) == 6

    def test_shard_levels_never_exceed_base_and_respect_floor(self):
        oram = small_test_config(6)
        assert shard_levels(oram.num_blocks, oram, ClusterConfig()) == 6
        assert shard_levels(1, oram, ClusterConfig(min_shard_levels=5)) == 5
        # The floor itself is clamped to the base depth.
        assert shard_levels(1, oram, ClusterConfig(min_shard_levels=30)) == 6
        assert (
            shard_levels(1, oram, ClusterConfig(auto_scale_levels=False)) == 6
        )

    def test_full_capacity_tree_cannot_shrink_when_striped(self):
        # The off-by-one the benchmark documents: a maximally-full tree
        # stripes into shards one block past the next-shallower tree's
        # capacity (2^(L+1) - 1 buckets is odd), so depth stays put.
        oram = small_test_config(10)
        assert oram.num_blocks == oram.max_data_blocks()
        part = AddressPartitioner(oram.num_blocks, 2)
        assert shard_levels(part.shard_capacity(0), oram, ClusterConfig()) == 10

    def test_shard_system_config_derivations_are_public(self):
        config = cluster_system(levels=8, shards=4, queue=10)
        part = AddressPartitioner(config.oram.num_blocks, 4)
        shard3 = shard_system_config(config, 3, part)
        assert shard3.oram.num_blocks == part.shard_capacity(3)
        assert shard3.oram.levels < config.oram.levels
        # The cluster-wide window is split ceil(M / K) per shard so
        # K shards together still hold ~M schedulable entries.
        assert shard3.scheduler.label_queue_size == 3
        assert shard3.seed == config.seed + 3
        # Per-shard queues never collapse below one entry.
        tiny = cluster_system(levels=8, shards=4, queue=2)
        assert (
            shard_system_config(tiny, 1, part).scheduler.label_queue_size == 1
        )

    def test_cluster_config_validation(self):
        with pytest.raises(ConfigError):
            ClusterConfig(shards=0)
        with pytest.raises(ConfigError):
            ClusterConfig(dispatch="striped")
        with pytest.raises(ConfigError):
            ClusterConfig(min_shard_levels=-1)

    def test_cluster_overrides_parse(self):
        config = SystemConfig.from_overrides(
            {"cluster.shards": "4", "cluster.dispatch": "rr"}
        )
        assert config.cluster.shards == 4
        assert config.cluster.dispatch == "rr"


# --------------------------------------------------------------- service runs


def run_cluster_scenario(
    config: SystemConfig,
    clients: int = 4,
    requests: int = 15,
    tracer: Tracer | None = None,
    traces=None,
    hot_span: int = 0,
):
    """Start a cluster service, drive it with the loadgen, stop it."""

    async def scenario():
        service = ClusterService(config, tracer=tracer, traces=traces)
        host, port = await service.start()
        result = await run_loadgen(
            host,
            port,
            clients=clients,
            requests=requests,
            num_blocks=service.num_blocks,
            seed=13,
            hot_span=hot_span,
        )
        await service.stop()
        return service, result

    return asyncio.run(scenario())


class TestClusterService:
    def test_four_shard_run_loses_nothing_and_keeps_the_schedule(self):
        """The headline cluster test: concurrent load over four shards,
        every request answered exactly once, every shard padded to the
        same access count, the visit sequence exactly round-robin."""
        config = cluster_system(levels=7, shards=4, dispatch="rr")
        service, result = run_cluster_scenario(config, clients=4, requests=20)

        assert result.sent == 80
        assert (result.lost, result.failed, result.mismatches) == (0, 0, 0)
        workers = service.router.workers
        counts = [worker.engine.accesses for worker in workers]
        verify_shard_balance(counts)
        assert max(counts) == min(counts)  # stop() finishes whole rounds
        assert sum(counts) == service.router.rounds * 4
        assert all(worker.engine.underfull_rounds == 0 for worker in workers)
        verify_visit_schedule(list(service.router.visit_log), 4)
        # Striping actually engaged: shallower trees than the monolith.
        assert all(worker.config.oram.levels < 7 for worker in workers)

    def test_parallel_dispatch_keeps_the_same_round_discipline(self):
        config = cluster_system(levels=6, shards=3, dispatch="parallel")
        service, result = run_cluster_scenario(config, clients=3, requests=15)
        assert (result.lost, result.failed, result.mismatches) == (0, 0, 0)
        counts = [w.engine.accesses for w in service.router.workers]
        verify_shard_balance(counts)
        verify_visit_schedule(list(service.router.visit_log), 3)

    def test_single_shard_cluster_degenerates_to_the_monolith(self):
        config = cluster_system(levels=6, shards=1)
        service, result = run_cluster_scenario(config, clients=2, requests=10)
        assert (result.lost, result.mismatches) == (0, 0)
        worker = service.router.workers[0]
        assert worker.config.oram.levels == 6
        assert worker.config.oram.num_blocks == config.oram.num_blocks

    def test_skewed_load_still_pads_every_shard(self):
        """All real traffic on a hot range; dummy padding must keep the
        cold shards' access counts identical to the hot one's."""
        config = cluster_system(levels=6, shards=4, dispatch="rr")
        service, result = run_cluster_scenario(
            config, clients=2, requests=15, hot_span=3
        )
        assert (result.lost, result.mismatches) == (0, 0)
        counts = [w.engine.accesses for w in service.router.workers]
        assert max(counts) == min(counts)
        reals = [w.engine.real_accesses for w in service.router.workers]
        assert max(reals) > 0  # the skew was real...
        verify_shard_balance(counts)  # ...and invisible at the boundary

    def test_router_rejects_mismatched_backend_and_trace_lists(self):
        config = cluster_system(shards=4)
        with pytest.raises(ConfigError):
            ShardRouter(config, backends=[InMemoryBackend()])
        with pytest.raises(ConfigError):
            ShardRouter(config, traces=[None, None])


# ------------------------------------------------------------- observability


class TestClusterObservability:
    def test_trace_is_shard_tagged_and_schema_valid(self):
        ring = RingBufferSink(capacity=100_000)
        tracer = Tracer(sinks=[ring])
        config = cluster_system(levels=6, shards=4)
        service, result = run_cluster_scenario(
            config, clients=4, requests=10, tracer=tracer
        )
        assert result.lost == 0
        events = [event.to_dict() for event in ring.events]
        completed = [e for e in events if e["kind"] == "service_completed"]
        assert len(completed) == 40
        shard_ids = {e["shard_id"] for e in completed}
        assert shard_ids == {0, 1, 2, 3}  # every shard served real work
        assert all(isinstance(e["shard_id"], int) for e in completed)
        assert validate_lines([json.dumps(e) for e in events]) == []
        assert tracer.counters.get("cluster.rounds") == service.router.rounds

    def test_shard_id_is_optional_and_type_checked(self):
        event = ServiceCompleted(
            ts_ns=1.0,
            request_id=1,
            session_id=2,
            op="get",
            addr=3,
            status="oram",
            latency_ns=5.0,
            phases={"admission_ns": 1.0, "sched_wait_ns": 1.0, "service_ns": 3.0},
        )
        # Single-engine events omit the field entirely: traces written
        # before the cluster existed and after it are byte-identical.
        assert "shard_id" not in event.to_dict()
        assert validate_lines([json.dumps(event.to_dict())]) == []
        tagged = event.to_dict() | {"shard_id": 2}
        assert validate_lines([json.dumps(tagged)]) == []
        mistyped = event.to_dict() | {"shard_id": "two"}
        assert validate_lines([json.dumps(mistyped)]) != []


# ------------------------------------------------------------------- security


def traced_cluster_run(workload: str, seed: int, requests: int = 40):
    """One 4-client run over a 4-shard ``rr`` cluster with a single
    interleaved trace recorder spanning every shard's backend.

    ``workload`` contrasts a maximally skewed program (every address on
    shard 0) against a uniform one — the cross-shard form of the
    indistinguishability experiment.
    """
    shards = 4
    config = cluster_system(levels=6, shards=shards, dispatch="rr")
    recorder = InterleavedTraceRecorder()

    async def client(host, port, index, rng):
        reader, writer = await asyncio.open_connection(host, port)
        for sequence in range(requests):
            if workload == "skewed":
                addr = rng.randrange(8) * shards  # all residue 0: shard 0
            else:
                addr = rng.randrange(config.oram.num_blocks)
            op = "put" if sequence % 2 == 0 else "get"
            message = {"id": sequence, "op": op, "addr": addr}
            if op == "put":
                message["value"] = f"w{index}-{sequence}"
            await protocol.write_message(writer, message)
            response = await protocol.read_message(reader)
            assert response is not None and response["ok"]
        writer.close()
        await writer.wait_closed()

    async def scenario():
        service = ClusterService(config, traces=recorder.shard_views(shards))
        host, port = await service.start()
        await asyncio.gather(
            *(client(host, port, i, random.Random(seed * 100 + i)) for i in range(4))
        )
        await service.stop()
        return service

    return asyncio.run(scenario()), recorder


class TestClusterSecurity:
    def test_interleaved_trace_reconstructible_from_public_labels(self):
        """The tentpole security property, measured: under maximally
        skewed traffic the full cross-shard view — which shard's
        storage is touched when, and which buckets — equals the
        deterministic reconstruction from the public label sequences
        and the fixed dispatch schedule. An adversary watching all four
        storage front doors learns nothing the labels don't say."""
        service, recorder = traced_cluster_run("skewed", seed=51)
        workers = service.router.workers
        counts = [worker.engine.accesses for worker in workers]
        verify_shard_balance(counts)
        verify_visit_schedule(list(service.router.visit_log), 4)
        checked = verify_interleaved_cluster_trace(
            [worker.engine.geometry for worker in workers],
            recorder.events,
            [[r[0] for r in worker.engine.records] for worker in workers],
            merging=service.config.scheduler.enable_merging,
        )
        assert checked > 1000  # the reconstruction covered a real run

    @pytest.fixture(scope="class")
    def cluster_profiles(self):
        def profiles(service):
            return [
                shard_profile(w.engine.geometry, w.engine.records)
                for w in service.router.workers
            ]

        skewed, _ = traced_cluster_run("skewed", seed=61, requests=60)
        uniform, _ = traced_cluster_run("uniform", seed=62, requests=60)
        uniform2, _ = traced_cluster_run("uniform", seed=63, requests=60)
        return profiles(skewed), profiles(uniform), profiles(uniform2)

    def test_per_shard_profiles_statistically_indistinguishable(
        self, cluster_profiles
    ):
        skewed, uniform, uniform2 = cluster_profiles
        for shard, (hot, cold) in enumerate(zip(skewed, uniform)):
            assert leaf_distribution_pvalue(hot, cold) > 0.001, shard
            assert shape_distribution_pvalue(hot, cold) > 0.001, shard
        # The hot shard is where a distinguisher would look first. The
        # per-shard samples are small, so the bootstrap classifier is
        # noisy; calibrate against the null (two uniform runs) instead
        # of an absolute threshold.
        advantage = adversary_advantage(skewed[0], uniform[0], trials=400)
        baseline = adversary_advantage(uniform2[0], uniform[0], trials=400)
        assert advantage < baseline + 0.15

    def test_schedule_checkers_catch_violations(self):
        verify_visit_schedule([2, 3, 0, 1, 2, 3], shards=4)  # offset ok
        with pytest.raises(ConfigError):
            verify_visit_schedule([0, 1, 1, 2], shards=3)
        verify_shard_balance([5, 5, 4, 4])  # mid-round prefix
        with pytest.raises(ConfigError):
            verify_shard_balance([5, 3, 5])
        with pytest.raises(ConfigError):
            verify_shard_balance([4, 5, 5])  # out-of-order progress


# ------------------------------------------------------- backend satellites


class TestBackendRegistry:
    def test_registry_drives_the_public_list(self):
        assert available_backends() == ("memory", "file", "faulty")
        assert tuple(BACKEND_FACTORIES) == available_backends()

    def test_register_backend_extends_config_validation(self):
        class NullBackend(InMemoryBackend):
            pass

        register_backend("null-test", lambda config, trace: NullBackend(trace))
        try:
            config = ServiceConfig(backend="null-test")  # validates
            assert isinstance(make_backend(config), NullBackend)
            with pytest.raises(ConfigError):
                register_backend("null-test", lambda config, trace: None)
        finally:
            del BACKEND_FACTORIES["null-test"]
        with pytest.raises(ConfigError):
            ServiceConfig(backend="null-test")

    def test_shard_service_config_splits_paths_and_fault_streams(self, tmp_path):
        base = ServiceConfig(
            backend="file", backend_path=str(tmp_path / "kv.log"), fault_seed=9
        )
        shard2 = shard_service_config(base, 2)
        assert shard2.backend_path == str(tmp_path / "kv.log.shard2")
        assert shard2.fault_seed == 11
        # Sharded file backends land in distinct logs.
        b0 = make_backend(base, shard_id=0)
        b1 = make_backend(base, shard_id=1)
        try:
            b0[1] = b"zero"
            b1[1] = b"one"
            assert (b0[1], b1[1]) == (b"zero", b"one")
        finally:
            b0.close()
            b1.close()
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "kv.log.shard0",
            "kv.log.shard1",
        ]


def drain(engine: ObliviousEngine) -> None:
    async def loop():
        for _ in range(2000):
            if not engine.has_pending_real():
                return
            await engine.run_access()
        raise AssertionError("engine did not drain in 2000 accesses")

    asyncio.run(loop())


class TestEngineCompaction:
    def serve_file_system(self, path: str, threshold: int) -> SystemConfig:
        return SystemConfig(
            oram=small_test_config(5, block_bytes=64),
            scheduler=SchedulerConfig(label_queue_size=8),
            cache=CacheConfig(policy="none"),
            service=ServiceConfig(
                backend="file",
                backend_path=path,
                compact_every_appends=threshold,
            ),
        )

    def test_engine_compacts_a_growing_log(self, tmp_path):
        path = str(tmp_path / "kv.log")
        config = self.serve_file_system(path, threshold=50)
        backend = FileBackend(path)
        engine = ObliviousEngine(config, backend)
        for round_no in range(6):
            for addr in range(8):
                assert engine.submit(
                    ServeRequest(op="put", addr=addr, value=f"r{round_no}")
                )
            drain(engine)
        assert engine.compactions >= 1
        # The compaction trigger bounds staleness at the threshold
        # (plus the appends of the access that crossed it).
        assert backend.records_appended - len(backend) < 50 + 32
        # Compaction lost nothing: the store still answers correctly.
        get = ServeRequest(op="get", addr=3)
        assert engine.submit(get)
        drain(engine)
        assert (get.found, get.result) == (True, "r5")
        engine.close()

    def test_compaction_reaches_through_wrapping_backends(self, tmp_path):
        path = str(tmp_path / "kv.log")
        config = self.serve_file_system(path, threshold=40)
        inner = FileBackend(path)
        backend = FaultyBackend(inner, FaultPlan(error_rate=0.0, seed=3))
        engine = ObliviousEngine(config, backend)
        for round_no in range(6):
            for addr in range(6):
                engine.submit(ServeRequest(op="put", addr=addr, value="x"))
            drain(engine)
        assert engine.compactions >= 1  # found the log through .base
        engine.close()

    def test_zero_threshold_disables_compaction(self, tmp_path):
        path = str(tmp_path / "kv.log")
        config = self.serve_file_system(path, threshold=0)
        backend = FileBackend(path)
        engine = ObliviousEngine(config, backend)
        for round_no in range(4):
            for addr in range(6):
                engine.submit(ServeRequest(op="put", addr=addr, value="y"))
            drain(engine)
        assert engine.compactions == 0
        engine.close()

    def test_compact_every_appends_validation(self):
        with pytest.raises(ConfigError):
            ServiceConfig(compact_every_appends=-1)


class TestBatchSimulatorOverFileBackend:
    def test_path_oram_runs_over_persistent_backend(self, tmp_path):
        """The batch simulator drives the backend through the plain
        synchronous mapping protocol — same seam the async service
        uses, same on-disk format, torn-tail recovery included."""
        path = str(tmp_path / "tree.log")
        oram_config = small_test_config(4)
        cipher = CounterModeCipher(key=b"s" * 16, block_bytes=16)
        backend = FileBackend(path)
        memory = UntrustedMemory(
            TreeGeometry(oram_config.levels),
            oram_config.bucket_slots,
            cipher,
            backend=backend,
        )
        oram = PathOram(oram_config, rng=random.Random(5), memory=memory)
        payloads = {
            addr: f"p{addr}".encode().ljust(16, b"\x00") for addr in range(20)
        }
        for addr, payload in payloads.items():
            oram.write(addr, payload)
        for addr, payload in payloads.items():
            assert oram.read(addr) == payload
        assert backend.records_appended > 0
        backend.sync()
        snapshot = {node: backend[node] for node in backend}
        backend.close()

        # Crash mid-append: the recovered store must be a prefix of the
        # pre-crash state and every surviving bucket must still open.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        recovered = FileBackend(path)
        assert recovered.torn_tail
        assert set(recovered) <= set(snapshot)
        # Tearing the newest record for a node rolls that node back to
        # its previous version; every other node must be untouched.
        stale = [n for n in recovered if recovered[n] != snapshot[n]]
        assert len(stale) <= 1
        memory2 = UntrustedMemory(
            TreeGeometry(oram_config.levels),
            oram_config.bucket_slots,
            cipher,
            backend=recovered,
        )
        for node in list(recovered):
            memory2.read_bucket(node)  # decrypts cleanly
        recovered.close()


# ----------------------------------------------------------------------- CLI


class TestClusterCli:
    def test_info_lists_cluster_and_compact(self, capsys):
        from repro.cli import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "cluster" in out and "compact" in out

    def test_compact_command_shrinks_a_stale_log(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "kv.log")
        backend = FileBackend(path)
        for round_no in range(10):
            for node in range(5):
                backend[node] = f"r{round_no}-n{node}".encode()
        backend.close()
        before = os.path.getsize(path)
        assert main(["compact", path]) == 0
        out = capsys.readouterr().out
        assert "50 records" in out and "5 live" in out
        assert os.path.getsize(path) < before
        reopened = FileBackend(path)
        assert reopened.recovered_records == 5
        assert reopened[4] == b"r9-n4"
        reopened.close()

    def test_compact_command_missing_path(self, tmp_path):
        from repro.cli import main

        assert main(["compact", str(tmp_path / "absent.log")]) == 2

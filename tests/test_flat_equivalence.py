"""Differential equivalence: flat/batched data plane vs reference loops.

The flat byte-buffer data plane ships three independent fast paths, each
with a reference toggle kept alive for exactly this suite:

* ``ForkPathController.batched`` — one ``read_many``/``write_many`` +
  chained DRAM walk per path segment vs the legacy per-node loop;
* ``Stash.indexed`` — snapshot/heap eviction vs the rescan oracle;
* ``UntrustedMemory._packed`` — in-slab pack/unpack vs the generic
  ``seal_blocks``/``open_blocks`` cipher boundary.

All eight combinations must produce the *identical* public behaviour on
the same seeds: the adversary-visible trace (op, node, timestamp), the
values returned to the workload, the metrics summary, and the stash
occupancy trajectory. The serve engine's ``batched`` toggle gets the
same treatment against its per-node loop.
"""

from __future__ import annotations

import asyncio
import random

from repro import fork_path_scheduler, traditional_scheduler
from repro.config import (
    CacheConfig,
    SchedulerConfig,
    ServiceConfig,
    SystemConfig,
    small_test_config,
)
from repro.core.controller import ForkPathController
from repro.experiments.common import SMALL, base_config
from repro.serve.backends import InMemoryBackend
from repro.serve.engine import ObliviousEngine, ServeRequest
from repro.workloads.synthetic import uniform_trace
from repro.workloads.trace import TraceSource


def _run(scheduler, *, batched: bool, indexed: bool, packed: bool,
         requests: int = 300):
    """One short saturating run; returns everything observable."""
    config = base_config(SMALL, scheduler=scheduler)
    trace = uniform_trace(
        requests, 2048, 50.0, random.Random(11), write_fraction=0.3
    )
    controller = ForkPathController(
        config, TraceSource(trace), rng=random.Random(12)
    )
    controller.batched = batched
    controller.stash.indexed = indexed
    if not packed:
        controller.memory._packed = False
    metrics = controller.run()
    return {
        "values": [request.value for request in trace],
        "trace": controller.memory.trace.events,
        "summary": metrics.summary(),
        "occupancy": list(controller.stash.occupancy_samples),
    }


class TestControllerEquivalence:
    def test_all_fast_paths_match_reference_fork(self):
        reference = _run(
            fork_path_scheduler(16), batched=False, indexed=False, packed=False
        )
        for batched in (False, True):
            for indexed in (False, True):
                for packed in (False, True):
                    if not (batched or indexed or packed):
                        continue
                    candidate = _run(
                        fork_path_scheduler(16),
                        batched=batched,
                        indexed=indexed,
                        packed=packed,
                    )
                    label = f"batched={batched} indexed={indexed} packed={packed}"
                    assert candidate["values"] == reference["values"], label
                    assert candidate["trace"] == reference["trace"], label
                    assert candidate["summary"] == reference["summary"], label
                    assert candidate["occupancy"] == reference["occupancy"], label

    def test_fast_paths_match_reference_traditional(self):
        """Merging off (retain = 0): the batched write covers the whole
        path — the deepest-possible batch — and must still match."""
        reference = _run(
            traditional_scheduler(), batched=False, indexed=False, packed=False
        )
        candidate = _run(
            traditional_scheduler(), batched=True, indexed=True, packed=True
        )
        assert candidate["values"] == reference["values"]
        assert candidate["trace"] == reference["trace"]
        assert candidate["summary"] == reference["summary"]
        assert candidate["occupancy"] == reference["occupancy"]


def _serve_config(levels: int = 6) -> SystemConfig:
    return SystemConfig(
        oram=small_test_config(levels, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
        service=ServiceConfig(),
    )


def _drive_engine(batched: bool):
    engine = ObliviousEngine(_serve_config(), InMemoryBackend())
    engine.batched = batched
    results = []

    async def scenario():
        rng = random.Random(21)
        for index in range(60):
            addr = rng.randrange(24)
            if rng.random() < 0.5:
                request = ServeRequest(op="put", addr=addr, value=f"v{index}")
            else:
                request = ServeRequest(op="get", addr=addr)
            assert engine.submit(request)
            for _ in range(200):
                if not engine.has_pending_real():
                    break
                await engine.run_access()
            results.append((request.op, request.addr, request.found,
                            request.result, request.status))

    asyncio.run(scenario())
    return engine, results


class TestServeEngineEquivalence:
    def test_batched_engine_matches_per_node_reference(self):
        batched_engine, batched_results = _drive_engine(batched=True)
        reference_engine, reference_results = _drive_engine(batched=False)
        assert batched_results == reference_results
        # Access log: (leaf, was_dummy, read_nodes, written) per access.
        assert list(batched_engine.records) == list(reference_engine.records)
        # The stored sealed buckets coincide node for node.
        assert (
            batched_engine.store.backend.data
            == reference_engine.store.backend.data
        )
        assert batched_engine.accesses == reference_engine.accesses
        assert batched_engine.real_accesses == reference_engine.real_accesses

"""Blocks and buckets."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, InvariantViolationError
from repro.oram.blocks import Block, Bucket, DUMMY_ADDR


class TestBlock:
    def test_dummy_detection(self):
        assert Block.dummy().is_dummy()
        assert not Block(3, 1, None).is_dummy()

    def test_copy_is_independent(self):
        block = Block(1, 2, [1, 2])
        clone = block.copy()
        clone.leaf = 7
        assert block.leaf == 2
        # Payload is shared by reference (copy is shallow by design).
        assert clone.payload is block.payload

    def test_dummy_addr_constant(self):
        assert Block.dummy().addr == DUMMY_ADDR


class TestBucket:
    def test_capacity_enforced_on_add(self):
        bucket = Bucket(2)
        bucket.add(Block(1, 0))
        bucket.add(Block(2, 0))
        with pytest.raises(InvariantViolationError):
            bucket.add(Block(3, 0))

    def test_capacity_enforced_at_construction(self):
        with pytest.raises(InvariantViolationError):
            Bucket(1, [Block(1, 0), Block(2, 0)])
        with pytest.raises(ConfigError):
            Bucket(0)

    def test_dummies_are_implicit(self):
        bucket = Bucket(4)
        with pytest.raises(InvariantViolationError):
            bucket.add(Block.dummy())

    def test_find(self):
        bucket = Bucket(4)
        bucket.add(Block(5, 1, "x"))
        assert bucket.find(5).payload == "x"
        assert bucket.find(6) is None

    def test_take_all_empties(self):
        bucket = Bucket(4)
        bucket.add(Block(1, 0))
        bucket.add(Block(2, 0))
        taken = bucket.take_all()
        assert {block.addr for block in taken} == {1, 2}
        assert len(bucket) == 0
        assert bucket.free_slots == 4

    def test_iteration_and_len(self):
        bucket = Bucket(3)
        bucket.add(Block(1, 0))
        assert [block.addr for block in bucket] == [1]
        assert len(bucket) == 1
        assert not bucket.is_full()

    def test_copy_deep_copies_blocks(self):
        bucket = Bucket(2, [Block(1, 5)])
        clone = bucket.copy()
        clone.blocks[0].leaf = 9
        assert bucket.blocks[0].leaf == 5

    def test_empty_factory(self):
        assert len(Bucket.empty(4)) == 0

"""Path merging: the fork-state bookkeeping of Section 3.2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merging import ForkState
from repro.errors import InvariantViolationError
from repro.oram.tree import TreeGeometry


def make_fork(levels: int = 3, enabled: bool = True) -> ForkState:
    return ForkState(TreeGeometry(levels), enabled=enabled)


class TestReadSet:
    def test_first_access_reads_full_path(self):
        fork = make_fork()
        assert fork.read_set(1) == [0, 1, 3, 8]

    def test_resident_prefix_is_skipped(self):
        """Figure 4(a): after retaining A and B, only C and D load."""
        fork = make_fork()
        fork.commit_write(1, retain=2)  # keep levels 0-1 of path-1
        assert fork.resident == [0, 1]
        assert fork.read_set(3) == [4, 10]  # path-3 minus shared prefix

    def test_disabled_merging_always_reads_everything(self):
        fork = make_fork(enabled=False)
        fork.commit_write(1, retain=2)
        assert fork.resident == []
        assert fork.read_set(1) == [0, 1, 3, 8]

    def test_desync_is_detected(self):
        """A resident set that is not a prefix of the requested path is
        a scheduler/merge protocol violation, not silent data motion."""
        fork = make_fork()
        fork.commit_write(7, retain=3)  # deep into the right subtree
        with pytest.raises(InvariantViolationError):
            fork.read_set(0)  # left-most path shares only the root


class TestRetainAndWrite:
    def test_retain_depth_is_divergence(self):
        fork = make_fork()
        assert fork.retain_depth(1, 3) == 2
        assert fork.retain_depth(1, 1) == 4  # identical path

    def test_retain_depth_zero_when_disabled(self):
        fork = make_fork(enabled=False)
        assert fork.retain_depth(1, 3) == 0

    def test_write_levels_descend_to_fork_point(self):
        """Figure 4(b): next is path-7 (shares only the root with
        path-1), so levels 3, 2, 1 are re-filled, leaf first."""
        fork = make_fork()
        retain = fork.retain_depth(1, 7)
        assert retain == 1
        assert fork.write_levels(1, retain) == [3, 2, 1]

    def test_write_levels_full_path_when_retain_zero(self):
        fork = make_fork()
        assert fork.write_levels(5, 0) == [3, 2, 1, 0]

    def test_commit_zero_retain_clears_residency(self):
        fork = make_fork()
        fork.commit_write(1, retain=2)
        fork.commit_write(1, retain=0)
        assert fork.resident == []

    def test_reset(self):
        fork = make_fork()
        fork.commit_write(1, retain=3)
        fork.reset()
        assert fork.resident == []


class TestForkShape:
    def test_consecutive_accesses_form_a_fork(self):
        """Read set of access i+1 + retained prefix = its full path."""
        fork = make_fork(levels=4)
        tree = fork.geometry
        sequence = [3, 5, 5, 12, 0, 15, 8]
        previous = None
        for index, leaf in enumerate(sequence):
            read = fork.read_set(leaf)
            assert fork.resident + read == tree.path_nodes(leaf)
            if previous is not None:
                shared = tree.shared_nodes(previous, leaf)
                assert fork.resident == shared[: len(fork.resident)]
            next_leaf = sequence[index + 1] if index + 1 < len(sequence) else leaf
            retain = fork.retain_depth(leaf, next_leaf)
            fork.commit_write(leaf, retain)
            previous = leaf


@settings(max_examples=150, deadline=None)
@given(
    levels=st.integers(1, 10),
    leaves=st.lists(st.integers(0, 1023), min_size=2, max_size=40),
)
def test_merged_traffic_is_never_more_than_traditional(levels, leaves):
    """Per access: len(read set) + len(write set) <= 2 * (L + 1), and
    the union of reads over time covers exactly what writes released."""
    tree = TreeGeometry(levels)
    fork = ForkState(tree)
    leaves = [leaf % tree.num_leaves for leaf in leaves]
    for index, leaf in enumerate(leaves[:-1]):
        read = fork.read_set(leaf)
        retain = fork.retain_depth(leaf, leaves[index + 1])
        writes = fork.write_levels(leaf, retain)
        assert len(read) <= tree.levels + 1
        assert len(writes) <= tree.levels + 1
        # Every written level is outside the retained prefix.
        assert all(level >= retain for level in writes)
        fork.commit_write(leaf, retain)
        assert len(fork.resident) == retain

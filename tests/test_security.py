"""Security obligations from DESIGN.md, tested end to end.

1. Label uniformity: every revealed label is uniform over leaves —
   for the baseline, for merging, and for the scheduled (reordered,
   dummy-padded) sequence.
2. Trace determinism: the adversary-visible bucket trace is a pure
   function of the public label sequence (the paper's §3.6 argument,
   executable).
3. Queue padding: the label queue presents a full window regardless of
   LLC intensity.
4. Stash pressure: merging does not increase effective stash occupancy
   (§3.6's overflow argument).
"""

from __future__ import annotations

import random

import pytest

from repro.config import (
    CacheConfig,
    SchedulerConfig,
    SystemConfig,
    small_test_config,
)
from repro.core.controller import ForkPathController
from repro.oram.path_oram import PathOram
from repro.security.adversary import (
    executed_leaves,
    expected_fork_trace,
    split_trace_into_accesses,
    verify_trace_matches_labels,
)
from repro.security.properties import (
    chi_square_uniformity,
    expected_pairwise_overlap,
    mean_pairwise_overlap,
)
from repro.workloads.synthetic import uniform_trace
from repro.workloads.trace import TraceSource


def run_controller(levels=8, queue=8, merging=True, scheduling=True, n=600,
                   gap=100.0, seed=2):
    config = SystemConfig(
        oram=small_test_config(levels),
        scheduler=SchedulerConfig(
            label_queue_size=queue,
            enable_merging=merging,
            enable_scheduling=scheduling,
            enable_dummy_replacing=merging,
        ),
        cache=CacheConfig(policy="none"),
    )
    trace = uniform_trace(n, 200, gap, random.Random(seed))
    controller = ForkPathController(
        config, TraceSource(trace), rng=random.Random(seed + 1)
    )
    metrics = controller.run()
    return controller, metrics


class TestLabelUniformity:
    def test_baseline_path_oram(self):
        oram = PathOram(small_test_config(7), rng=random.Random(1))
        rng = random.Random(2)
        for _ in range(1200):
            oram.write(rng.randrange(60), 0)
        p = chi_square_uniformity(oram.stats.leaf_sequence, oram.geometry.num_leaves)
        assert p > 0.001

    def test_fork_path_executed_labels(self):
        """The *executed* (scheduled + dummy-padded) label marginal must
        stay uniform: scheduling reorders but never biases values."""
        controller, metrics = run_controller(n=1500, gap=60.0)
        leaves = executed_leaves(metrics)
        p = chi_square_uniformity(leaves, controller.geometry.num_leaves)
        assert p > 0.001

    def test_scheduled_sequence_has_elevated_consecutive_overlap(self):
        """Sanity of the mechanism itself: scheduling *should* raise
        consecutive overlap above the iid baseline — that is the whole
        point, and it is public information."""
        controller, metrics = run_controller(n=1500, gap=60.0, queue=16)
        observed = mean_pairwise_overlap(
            executed_leaves(metrics), controller.geometry
        )
        iid = expected_pairwise_overlap(controller.geometry)
        assert observed > iid + 0.5

    def test_traditional_sequence_matches_iid_overlap(self):
        controller, metrics = run_controller(
            n=1500, gap=60.0, queue=1, merging=False, scheduling=False
        )
        observed = mean_pairwise_overlap(
            executed_leaves(metrics), controller.geometry
        )
        iid = expected_pairwise_overlap(controller.geometry)
        assert abs(observed - iid) < 0.35


class TestTraceDeterminism:
    def test_merged_trace_is_function_of_labels(self):
        controller, metrics = run_controller(n=400, gap=100.0)
        verify_trace_matches_labels(
            controller.geometry,
            controller.memory.trace.events,
            executed_leaves(metrics),
            merging=True,
        )

    def test_traditional_trace_is_function_of_labels(self):
        controller, metrics = run_controller(
            n=300, gap=100.0, queue=1, merging=False, scheduling=False
        )
        verify_trace_matches_labels(
            controller.geometry,
            controller.memory.trace.events,
            executed_leaves(metrics),
            merging=False,
        )

    def test_reconstruction_detects_tampering(self):
        controller, metrics = run_controller(n=200, gap=100.0)
        leaves = executed_leaves(metrics)
        # Corrupt one label: the reconstruction must not match.
        leaves[len(leaves) // 2] ^= 1
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            verify_trace_matches_labels(
                controller.geometry,
                controller.memory.trace.events,
                leaves,
                merging=True,
            )

    def test_expected_trace_shape_for_fixed_labels(self):
        from repro.oram.tree import TreeGeometry
        from repro.oram.memory import MemoryOp

        tree = TreeGeometry(3)
        trace = expected_fork_trace(tree, [1, 3], merging=True)
        # Access 0: full read of path-1; write below divergence(1,3)=2.
        reads0 = [node for op, node in trace[:4]]
        assert reads0 == tree.path_nodes(1)
        writes0 = [node for op, node in trace[4:6]]
        assert writes0 == [8, 3]  # leaf-first, stops above level 2
        # Access 1: read of path-3 minus shared prefix.
        assert trace[6] == (MemoryOp.READ, 4)
        assert trace[7] == (MemoryOp.READ, 10)

    def test_split_trace_into_accesses(self):
        controller, metrics = run_controller(n=150, gap=100.0)
        chunks = split_trace_into_accesses(
            controller.geometry, controller.memory.trace.events
        )
        # One chunk per access that touched DRAM in both phases.
        assert len(chunks) >= metrics.total_accesses * 0.9


class TestQueuePadding:
    def test_selection_window_is_constant(self):
        """At every scheduling decision the queue holds exactly its
        configured size — independent of pending real requests."""
        from repro.core.scheduling import LabelQueue

        sizes = []
        original = LabelQueue.select_next

        def spying(self, current_leaf, now_ns):
            self.top_up(now_ns)
            sizes.append(len(self.entries))
            return original(self, current_leaf, now_ns)

        LabelQueue.select_next = spying
        try:
            run_controller(n=120, gap=2000.0, queue=8)  # sparse
            run_controller(n=120, gap=20.0, queue=8)  # dense
        finally:
            LabelQueue.select_next = original
        assert sizes and all(size == 8 for size in sizes)


class TestStashPressure:
    def test_merging_effective_occupancy_close_to_baseline(self):
        """§3.6: merging parks retained-bucket blocks in the stash, but
        beyond that its stash pressure matches the baseline."""
        _, fork_metrics = run_controller(n=800, gap=60.0, queue=8)
        controller_fork, _ = run_controller(n=800, gap=60.0, queue=8)
        controller_trad, _ = run_controller(
            n=800, gap=60.0, queue=1, merging=False, scheduling=False
        )
        z = controller_fork.config.oram.bucket_slots
        path = controller_fork.geometry.levels + 1
        fork_max = controller_fork.stash.max_occupancy
        trad_max = controller_trad.stash.max_occupancy
        assert fork_max <= trad_max + z * path

"""The public API surface: exports, error hierarchy, request objects.

A downstream user programs against ``repro``'s top level; this module
pins that contract.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.requests import AccessRecord, LlcRequest
from repro.errors import (
    ConfigError,
    DecryptionError,
    InvariantViolationError,
    ProtocolError,
    ReproError,
    StashOverflowError,
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_is_pep440ish(self):
        parts = repro.__version__.split(".")
        assert len(parts) >= 2
        assert all(part.isdigit() for part in parts[:2])

    def test_scheduler_factories(self):
        traditional = repro.traditional_scheduler()
        assert not traditional.enable_merging
        assert traditional.label_queue_size == 1
        fork = repro.fork_path_scheduler(32)
        assert fork.enable_merging
        assert fork.label_queue_size == 32

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.oram as oram
        import repro.workloads as workloads
        import repro.security as security
        import repro.extensions as extensions

        for module in (core, oram, workloads, security, extensions):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__,
                    name,
                )


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            ConfigError,
            InvariantViolationError,
            ProtocolError,
            DecryptionError,
            StashOverflowError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_config_error_is_also_value_error(self):
        """Callers using plain ``except ValueError`` still catch config
        mistakes."""
        assert issubclass(ConfigError, ValueError)

    def test_stash_overflow_carries_numbers(self):
        error = StashOverflowError(210, 200)
        assert error.occupancy == 210
        assert error.capacity == 200
        assert "210" in str(error)

    def test_integrity_error_in_hierarchy(self):
        from repro.extensions.integrity import IntegrityError

        assert issubclass(IntegrityError, ReproError)


class TestRequestObjects:
    def test_request_ids_are_unique(self):
        first = LlcRequest(addr=1, is_write=False)
        second = LlcRequest(addr=1, is_write=False)
        assert first.request_id != second.request_id

    def test_is_complete_lifecycle(self):
        request = LlcRequest(addr=1, is_write=False, arrival_ns=10.0)
        assert not request.is_complete()
        request.complete_ns = 25.0
        assert request.is_complete()
        assert request.latency_ns == pytest.approx(15.0)

    def test_posmap_requests_reference_parent(self):
        parent = LlcRequest(addr=1, is_write=True)
        chain = LlcRequest(
            addr=100, is_write=False, kind="posmap", parent=parent,
            chain_rest=[50],
        )
        assert chain.parent is parent
        assert chain.chain_rest == [50]

    def test_access_record_dram_time(self):
        record = AccessRecord(
            leaf=1,
            was_dummy=False,
            read_start_ns=0.0,
            read_end_ns=10.0,
            write_start_ns=12.0,
            write_end_ns=30.0,
        )
        assert record.dram_time_ns == pytest.approx(28.0)


class TestLabelEntrySemantics:
    def test_dummy_vs_real(self):
        from repro.core.requests import LabelEntry

        dummy = LabelEntry(leaf=3)
        assert dummy.is_dummy and not dummy.is_real
        real = LabelEntry(
            leaf=3,
            target_addr=1,
            new_leaf=4,
            request=LlcRequest(addr=1, is_write=False),
        )
        assert real.is_real and not real.is_dummy

"""Position map and the unified recursive address space."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.oram.posmap import (
    PositionMap,
    RecursiveAddressSpace,
    geometry_for_unified_space,
)
from repro.oram.tree import TreeGeometry


class TestPositionMap:
    def setup_method(self):
        self.tree = TreeGeometry(6)
        self.posmap = PositionMap(self.tree, random.Random(3))

    def test_lazy_assignment_is_stable(self):
        leaf = self.posmap.lookup(10)
        assert self.posmap.lookup(10) == leaf
        assert 10 in self.posmap

    def test_remap_returns_old_and_installs_new(self):
        first = self.posmap.lookup(5)
        old, new = self.posmap.remap(5)
        assert old == first
        assert self.posmap.lookup(5) == new

    def test_remap_labels_are_roughly_uniform(self):
        draws = [self.posmap.remap(1)[1] for _ in range(2000)]
        assert all(0 <= leaf < 64 for leaf in draws)
        # Every quartile of the leaf space gets a fair share.
        quartiles = [0] * 4
        for leaf in draws:
            quartiles[leaf // 16] += 1
        for count in quartiles:
            assert 350 < count < 650

    def test_peek_requires_existing_entry(self):
        with pytest.raises(ConfigError):
            self.posmap.peek(99)

    def test_assign_validates_leaf(self):
        self.posmap.assign(1, 63)
        assert self.posmap.peek(1) == 63
        with pytest.raises(ConfigError):
            self.posmap.assign(1, 64)

    def test_len_and_items(self):
        self.posmap.lookup(1)
        self.posmap.lookup(2)
        assert len(self.posmap) == 2
        assert dict(self.posmap.items()).keys() == {1, 2}


class TestRecursiveAddressSpace:
    def test_no_recursion_when_map_fits(self):
        space = RecursiveAddressSpace(
            num_data_blocks=100, labels_per_block=16, onchip_bytes=1 << 20
        )
        assert space.depth == 0
        assert space.chain_for(5) == [5]
        assert space.total_blocks == 100

    def test_two_level_layout(self):
        # 4096 data blocks, 16 labels/block, on-chip holds 64 labels.
        space = RecursiveAddressSpace(
            num_data_blocks=4096,
            labels_per_block=16,
            label_bytes=4,
            onchip_bytes=64 * 4,
        )
        assert space.level_sizes == [256, 16]
        assert space.level_bases == [4096, 4096 + 256]
        assert space.depth == 2
        assert space.onchip_entries == 16
        assert space.total_blocks == 4096 + 256 + 16

    def test_chain_is_deepest_first_then_data(self):
        space = RecursiveAddressSpace(
            num_data_blocks=4096,
            labels_per_block=16,
            label_bytes=4,
            onchip_bytes=64 * 4,
        )
        chain = space.chain_for(1000)
        # ORAM2 block covering 1000, then ORAM1, then the data block.
        assert chain == [
            4096 + 256 + 1000 // 256,
            4096 + 1000 // 16,
            1000,
        ]
        assert space.accesses_per_request() == 3

    def test_posmap_addr_bounds(self):
        space = RecursiveAddressSpace(4096, 16, 4, 64 * 4)
        with pytest.raises(ConfigError):
            space.posmap_addr(0, 3)
        with pytest.raises(ConfigError):
            space.posmap_addr(4096, 1)

    def test_is_posmap_addr(self):
        space = RecursiveAddressSpace(4096, 16, 4, 64 * 4)
        assert not space.is_posmap_addr(4095)
        assert space.is_posmap_addr(4096)
        assert space.is_posmap_addr(space.total_blocks - 1)
        assert not space.is_posmap_addr(space.total_blocks)

    def test_neighbouring_addresses_share_posmap_blocks(self):
        space = RecursiveAddressSpace(4096, 16, 4, 64 * 4)
        assert space.posmap_addr(0, 1) == space.posmap_addr(15, 1)
        assert space.posmap_addr(0, 1) != space.posmap_addr(16, 1)

    def test_describe_mentions_every_level(self):
        space = RecursiveAddressSpace(4096, 16, 4, 64 * 4)
        text = space.describe()
        assert "ORAM1" in text and "ORAM2" in text

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            RecursiveAddressSpace(0, 16)
        with pytest.raises(ConfigError):
            RecursiveAddressSpace(10, 1)


class TestUnifiedGeometry:
    def test_tree_covers_all_regions(self):
        space = RecursiveAddressSpace(4096, 16, 4, 64 * 4)
        tree = geometry_for_unified_space(space, bucket_slots=4, utilization=0.5)
        assert tree.num_nodes * 4 * 0.5 >= space.total_blocks
        smaller = TreeGeometry(tree.levels - 1)
        assert smaller.num_nodes * 4 * 0.5 < space.total_blocks

"""Statistics helpers and plain-text reporting."""

from __future__ import annotations

import math

import pytest

from repro.analysis.report import Table, format_series, format_table
from repro.analysis.stats import geomean, mean, normalize, summarize_latencies
from repro.errors import ConfigError


class TestStats:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ConfigError):
            mean([])

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([10.0]) == pytest.approx(10.0)
        with pytest.raises(ConfigError):
            geomean([1.0, 0.0])
        with pytest.raises(ConfigError):
            geomean([])

    def test_geomean_is_scale_invariant(self):
        values = [1.5, 2.5, 9.0]
        scaled = [value * 3 for value in values]
        assert geomean(scaled) == pytest.approx(3 * geomean(values))

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ConfigError):
            normalize([1.0], 0.0)

    def test_summarize_latencies(self):
        summary = summarize_latencies(list(map(float, range(1, 101))))
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == 50.0
        assert summary["p95"] == 95.0
        assert summary["max"] == 100.0

    def test_summarize_empty(self):
        assert summarize_latencies([])["mean"] == 0.0


class TestReport:
    def test_table_alignment_and_content(self):
        table = Table("Title", ["a", "bbb"])
        table.add_row(1, 2.5)
        table.add_row("xx", 0.000001)
        text = table.render()
        assert "Title" in text
        assert "2.500" in text
        assert "1.000e-06" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:]}) == 1  # aligned

    def test_row_width_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ConfigError):
            table.add_row(1)

    def test_format_table_and_series(self):
        text = format_table("T", ["x", "y"], [[1, 2.0]])
        assert "T" in text
        series = format_series("S", [1, 2], [0.5, 0.25])
        assert "0.500" in series
        with pytest.raises(ConfigError):
            format_series("S", [1], [0.5, 0.25])

"""Property tests for the packed sealed-record codec and the flat
store's allocation behaviour.

The codec (:mod:`repro.oram.records`) is the storage format of the flat
data plane: every sealed bucket a backend, WAL or slab ever holds is
one of these images. The properties pinned here:

* round-trip: ``pack``/``pack_into`` then ``unpack_from`` reproduces
  every block — address, leaf, payload value *and* payload type
  (``bool`` must not collapse to ``int``, huge ints must survive);
* framing: ``pack_into`` writes byte-for-byte the same image as
  ``pack``, at any slab offset;
* rejection: every strict truncation and structural corruption (bad
  tag, oversized length field) raises ``DecryptionError`` rather than
  returning garbage;
* the flat store runs allocation-free in steady state — a pinned
  ``tracemalloc`` budget guards against object-graph regressions.
"""

from __future__ import annotations

import dataclasses
import gc
import random
import tracemalloc

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fork_path_scheduler
from repro.core.controller import ForkPathController
from repro.errors import DecryptionError
from repro.experiments.common import SMALL, base_config
from repro.oram import records
from repro.oram.blocks import Block
from repro.oram.memory import FlatNodeStore
from repro.workloads.synthetic import uniform_trace
from repro.workloads.trace import TraceSource

_I64 = st.integers(-(1 << 63), (1 << 63) - 1)

#: Payloads covering every tag: None, machine ints, ints past the i64
#: fast path, bytes, text, and pickle-only objects (bool is an int
#: subclass — the codec must keep its exact type).
_PAYLOADS = st.one_of(
    st.none(),
    _I64,
    st.integers(1 << 64, 1 << 80),
    st.integers(-(1 << 80), -(1 << 64)),
    st.binary(max_size=200),
    st.text(max_size=80),
    st.booleans(),
    st.tuples(st.integers(0, 9), st.text(max_size=8)),
)

_BLOCKS = st.lists(
    st.builds(Block, addr=_I64, leaf=_I64, payload=_PAYLOADS), max_size=8
)

_COUNTERS = st.integers(0, (1 << 128) - 1)


def _assert_blocks_equal(unpacked, blocks) -> None:
    assert len(unpacked) == len(blocks)
    for got, want in zip(unpacked, blocks):
        assert got.addr == want.addr
        assert got.leaf == want.leaf
        assert got.payload == want.payload
        assert type(got.payload) is type(want.payload)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(counter=_COUNTERS, blocks=_BLOCKS)
    def test_pack_unpack_round_trip(self, counter, blocks):
        sealed = records.pack(counter, blocks)
        assert records.unpack_counter(sealed) == counter
        _assert_blocks_equal(records.unpack_from(sealed), blocks)

    @settings(max_examples=100, deadline=None)
    @given(counter=_COUNTERS, blocks=_BLOCKS, base=st.integers(0, 64))
    def test_pack_into_matches_pack_at_any_offset(self, counter, blocks, base):
        sealed = records.pack(counter, blocks)
        buf = bytearray(base + len(sealed) + 32)
        end = records.pack_into(buf, base, len(buf), counter, blocks)
        assert end == base + len(sealed)
        assert bytes(buf[base:end]) == sealed
        _assert_blocks_equal(records.unpack_from(buf, base, end), blocks)

    @settings(max_examples=100, deadline=None)
    @given(
        z=st.integers(1, 8),
        hint=st.integers(16, 128),
        seed=st.integers(0, 10_000),
    )
    def test_slot_capacity_always_fits_hinted_payloads(self, z, hint, seed):
        """Any Z blocks whose raw payloads stay within the hint must
        pack into a ``slot_capacity`` slot (no spill)."""
        rng = random.Random(seed)
        blocks = [
            Block(
                addr=rng.randrange(1 << 40),
                leaf=rng.randrange(1 << 20),
                payload=rng.choice(
                    [None, rng.randrange(-(1 << 62), 1 << 62),
                     bytes(rng.randrange(hint + 1))]
                ),
            )
            for _ in range(z)
        ]
        cap = records.slot_capacity(z, hint)
        buf = bytearray(cap)
        end = records.pack_into(buf, 0, cap, 7, blocks)
        assert end != -1 and end <= cap
        _assert_blocks_equal(records.unpack_from(buf, 0, end), blocks)


class TestRejection:
    @settings(max_examples=150, deadline=None)
    @given(counter=_COUNTERS, blocks=_BLOCKS, cut=st.integers(0, 1_000_000))
    def test_any_truncation_is_rejected(self, counter, blocks, cut):
        """Every strict prefix of a sealed image fails to decode (the
        declared block count outruns the bytes)."""
        sealed = records.pack(counter, blocks)
        end = cut % len(sealed) if blocks else cut % records.HEADER_BYTES
        with pytest.raises(DecryptionError):
            records.unpack_from(sealed, 0, end)

    @settings(max_examples=100, deadline=None)
    @given(counter=_COUNTERS, blocks=_BLOCKS.filter(lambda b: len(b) > 0))
    def test_unknown_tag_is_rejected(self, counter, blocks):
        image = bytearray(records.pack(counter, blocks))
        # Tag byte of record 0 sits right after addr|leaf.
        image[records.HEADER_BYTES + 16] = 200
        with pytest.raises(DecryptionError):
            records.unpack_from(bytes(image))

    @settings(max_examples=100, deadline=None)
    @given(counter=_COUNTERS, blocks=_BLOCKS.filter(lambda b: len(b) > 0))
    def test_oversized_length_field_is_rejected(self, counter, blocks):
        image = bytearray(records.pack(counter, blocks))
        # Length field of record 0 (u16 LE after addr|leaf|tag).
        off = records.HEADER_BYTES + 17
        image[off : off + 2] = b"\xff\xff"
        with pytest.raises(DecryptionError):
            records.unpack_from(bytes(image))

    def test_header_too_short(self):
        with pytest.raises(DecryptionError):
            records.unpack_from(b"\x00" * (records.HEADER_BYTES - 1))
        with pytest.raises(DecryptionError):
            records.unpack_counter(b"\x00" * 15)

    def test_oversized_payload_rejected_at_pack_time(self):
        block = Block(1, 2, b"x" * 70_000)
        with pytest.raises(DecryptionError):
            records.pack(1, [block])


class TestFlatNodeStore:
    def test_bytes_only_contract(self):
        store = FlatNodeStore(bucket_slots=4)
        store[3] = records.pack(1, [])
        assert isinstance(store[3], bytes)
        with pytest.raises(TypeError):
            store[4] = (1, ())  # legacy tuple sealed form
        with pytest.raises(TypeError):
            store[4] = "not-bytes"

    def test_slab_and_spill_round_trip(self):
        store = FlatNodeStore(bucket_slots=2, payload_hint=16)
        small = [Block(1, 2, 7), Block(3, 4, None)]
        big = [Block(5, 6, b"y" * 4096)]  # overruns the slot -> spill
        store.pack_slot(10, 100, small)
        store.pack_slot(11, 101, big)
        _assert_blocks_equal(store.blocks_at(10), small)
        _assert_blocks_equal(store.blocks_at(11), big)
        assert records.unpack_counter(store[10]) == 100
        assert records.unpack_counter(store[11]) == 101
        assert sorted(store) == [10, 11]


class TestSteadyStateAllocations:
    def test_controller_allocation_budget(self):
        """Steady-state heap growth per access stays under a pinned
        budget: the data plane reuses slabs and scratch buffers, so
        only bounded accounting (occupancy samples, metrics records)
        may accumulate.
        """
        scale = dataclasses.replace(SMALL, trace_requests=900)
        config = base_config(scale, scheduler=fork_path_scheduler(16))
        trace = uniform_trace(900, 2048, 50.0, random.Random(3), write_fraction=0.3)
        controller = ForkPathController(
            config, TraceSource(trace), rng=random.Random(4)
        )
        controller.memory.trace.enabled = False
        controller.run(max_requests=300)  # warm caches, slabs, stash
        gc.collect()
        tracemalloc.start()
        baseline, _peak = tracemalloc.get_traced_memory()
        controller.run(max_requests=500)
        gc.collect()
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        growth = current - baseline
        # Pinned budget: ~500 accesses of bounded accounting. Measured
        # ~100-300B/access on CPython 3.11; 1 KiB/access of headroom
        # still catches a return to per-access bucket/block graphs
        # (which cost tens of KiB per access).
        assert growth < 500 * 1024, f"steady-state heap grew {growth} bytes"

"""Shared fixtures for the Fork Path ORAM test suite."""

from __future__ import annotations

import random

import pytest

from repro.config import (
    CacheConfig,
    OramConfig,
    SchedulerConfig,
    SystemConfig,
    small_test_config,
)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xF0124)


@pytest.fixture
def small_oram() -> OramConfig:
    """A 6-level tree: big enough for interesting paths, tiny to run."""
    return small_test_config(6)


@pytest.fixture
def fork_system() -> SystemConfig:
    """A small Fork Path system with scheduling and no data cache."""
    return SystemConfig(
        oram=small_test_config(8),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
    )


@pytest.fixture
def traditional_system() -> SystemConfig:
    """The same system configured as traditional (baseline) Path ORAM."""
    return SystemConfig(
        oram=small_test_config(8),
        scheduler=SchedulerConfig(
            label_queue_size=1,
            enable_merging=False,
            enable_scheduling=False,
            enable_dummy_replacing=False,
        ),
        cache=CacheConfig(policy="none"),
    )

"""Dummy label replacing — the three cases of Figure 5."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.replacement import can_replace_dummy, replacement_case
from repro.oram.tree import TreeGeometry


class TestFigureFiveCases:
    """The figure's setup: L = 3, current = path-0, real = path-3.

    divergence(0, 3) = 2, so the crossing bucket sits at level 1
    (bucket B in the figure). The refill writes levels 3, 2, 1, ...
    """

    def setup_method(self):
        self.tree = TreeGeometry(3)
        assert self.tree.divergence_level(0, 3) == 2

    def test_case1_refill_done(self):
        assert not can_replace_dummy(self.tree, 0, 3, 1, refill_done=True)
        assert replacement_case(self.tree, 0, 3, 1, True) == 1

    def test_case2_crossing_bucket_written(self):
        # Lowest written level 1 == divergence - 1: the bucket the real
        # path needs retained is already on the bus.
        assert not can_replace_dummy(self.tree, 0, 3, 1, refill_done=False)
        assert replacement_case(self.tree, 0, 3, 1, False) == 2

    def test_case3_writes_still_below_crossing(self):
        # Only levels 3 and 2 written so far.
        assert can_replace_dummy(self.tree, 0, 3, 2, refill_done=False)
        assert replacement_case(self.tree, 0, 3, 2, False) == 3

    def test_case3_before_any_write(self):
        assert can_replace_dummy(self.tree, 0, 3, 4, refill_done=False)

    def test_identical_path_replaceable_only_before_any_write(self):
        """divergence(0, 0) = L + 1: the crossing bucket is the leaf
        itself, so the first written level already commits the fork."""
        assert can_replace_dummy(self.tree, 0, 0, 4, refill_done=False)
        assert not can_replace_dummy(self.tree, 0, 0, 3, refill_done=False)
        assert not can_replace_dummy(self.tree, 0, 0, 4, refill_done=True)

    def test_disjoint_path_blocked_once_level1_written(self):
        # divergence(0, 7) = 1: crossing at the root (level 0).
        assert can_replace_dummy(self.tree, 0, 7, 1, refill_done=False)
        assert not can_replace_dummy(self.tree, 0, 7, 0, refill_done=False)


@settings(max_examples=200, deadline=None)
@given(
    levels=st.integers(1, 12),
    current=st.integers(0, 4095),
    real=st.integers(0, 4095),
    lowest_written=st.integers(0, 13),
)
def test_replacement_never_requires_unwriting(levels, current, real, lowest_written):
    """If replacement is allowed, the new retain depth never overlaps
    an already-written level — the refill can always continue."""
    tree = TreeGeometry(levels)
    current %= tree.num_leaves
    real %= tree.num_leaves
    lowest_written = min(lowest_written, levels + 1)
    if can_replace_dummy(tree, current, real, lowest_written, refill_done=False):
        retain = tree.divergence_level(current, real)
        # Written levels are lowest_written..L; retained are 0..retain-1.
        assert retain <= lowest_written

"""Tests for ``repro.pace`` — fixed-temporal-distribution serving.

The load-bearing guarantees under test:

* ``pace.*`` configuration validates its invariants and rejects
  unknown keys like every other namespace;
* the :class:`~repro.pace.Pacer` deadline chain never accelerates —
  an overrun slot re-anchors at *now* instead of issuing catch-up
  bursts — and its jitter stream is seeded and traffic-independent;
* the :class:`~repro.pace.AdaptiveDummyController` only moves the
  cadence at epoch boundaries, by the configured rules, inside the
  hard floor/ceiling bounds;
* a paced service keeps issuing pure-dummy accesses at zero load, and
  the resulting backend trace still equals the label-sequence
  reconstruction (the paper's security argument survives pacing).

No pytest-asyncio in the CI image: async tests run via ``asyncio.run``
inside plain sync test functions.
"""

from __future__ import annotations

import asyncio
import json

import pytest

import repro.pace
from repro.config import (
    CacheConfig,
    PaceConfig,
    SchedulerConfig,
    SystemConfig,
    small_test_config,
)
from repro.errors import ConfigError
from repro.obs.schema import validate_lines
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.pace import AdaptiveDummyController, Pacer
from repro.security.adversary import verify_trace_matches_labels
from repro.serve import protocol
from repro.serve.backends import FaultPlan, FaultyBackend, InMemoryBackend
from repro.serve.service import OramService


def pace_config(**kwargs: object) -> PaceConfig:
    merged: dict = dict(mode="fixed", interval_ns=1_000.0)
    merged.update(kwargs)
    return PaceConfig(**merged)  # type: ignore[arg-type]


def paced_system(interval_ns: float = 500_000.0, **pace_kwargs: object):
    return SystemConfig(
        oram=small_test_config(6, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
        pace=pace_config(interval_ns=interval_ns, **pace_kwargs),
    )


# ----------------------------------------------------------------- validation


class TestPaceConfig:
    def test_default_is_off(self):
        assert SystemConfig().pace.mode == "off"

    def test_overrides_reach_pace_namespace(self):
        config = SystemConfig.from_overrides(
            {
                "pace.mode": "jittered",
                "pace.interval_ns": "250000",
                "pace.jitter_ns": "50000",
                "pace.adaptive": "true",
                "pace.epoch_slots": "32",
            }
        )
        assert config.pace.mode == "jittered"
        assert config.pace.interval_ns == 250_000.0
        assert config.pace.jitter_ns == 50_000.0
        assert config.pace.adaptive is True
        assert config.pace.epoch_slots == 32

    def test_unknown_pace_key_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_overrides({"pace.cadence_ns": "100"})

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            PaceConfig(mode="periodic", interval_ns=100.0)

    def test_on_mode_requires_interval(self):
        with pytest.raises(ConfigError):
            PaceConfig(mode="fixed")

    def test_jittered_requires_jitter(self):
        with pytest.raises(ConfigError):
            PaceConfig(mode="jittered", interval_ns=100.0)

    def test_interval_must_lie_inside_explicit_bounds(self):
        with pytest.raises(ConfigError):
            pace_config(interval_ns=100.0, min_interval_ns=200.0,
                        max_interval_ns=400.0)

    def test_watermarks_and_factor_validated(self):
        with pytest.raises(ConfigError):
            pace_config(high_watermark=0)
        with pytest.raises(ConfigError):
            pace_config(low_watermark=5, high_watermark=5)
        with pytest.raises(ConfigError):
            pace_config(adjust_factor=1.0)

    def test_default_bounds_are_eightfold(self):
        assert pace_config(interval_ns=800.0).interval_bounds() == (
            100.0,
            6_400.0,
        )


# ---------------------------------------------------------------------- pacer


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class _ClockAdvancingSleep:
    """Stand-in ``asyncio`` whose sleep advances a manual clock, so the
    deadline-chain arithmetic is tested deterministically."""

    def __init__(self, clock: _ManualClock) -> None:
        self._clock = clock

    async def sleep(self, seconds: float) -> None:
        self._clock.t += seconds * 1e9


class TestPacer:
    def test_refuses_off_mode(self):
        with pytest.raises(ConfigError):
            Pacer(PaceConfig())

    def test_fixed_chain_and_overrun_reanchor(self, monkeypatch):
        clock = _ManualClock()
        monkeypatch.setattr(repro.pace, "asyncio", _ClockAdvancingSleep(clock))
        pacer = Pacer(pace_config(interval_ns=1_000.0), clock=clock)

        async def scenario():
            first = await pacer.wait_for_slot()
            assert first == 1_000.0  # anchored at start, slept one gap
            assert pacer.pending_deadline_ns() == 2_000.0
            # The access overruns three full gaps...
            clock.t = 5_000.0
            second = await pacer.wait_for_slot()
            # ...and the chain re-anchors at now: no catch-up burst,
            # the next deadline is a full gap after the overrun.
            assert second == 0.0
            assert pacer.pending_deadline_ns() == 6_000.0
            third = await pacer.wait_for_slot()
            assert third == 1_000.0
            assert pacer.pending_deadline_ns() == 7_000.0

        asyncio.run(scenario())
        assert pacer.waited_ns == 2_000.0

    def test_jitter_stream_is_seeded_and_bounded(self):
        config = pace_config(
            mode="jittered", interval_ns=1_000.0, jitter_ns=300.0, seed=11
        )
        first = Pacer(config)
        second = Pacer(config)
        gaps = [first.next_gap_ns() for _ in range(64)]
        assert gaps == [second.next_gap_ns() for _ in range(64)]
        assert all(1_000.0 <= gap <= 1_300.0 for gap in gaps)
        assert len(set(gaps)) > 1
        other = Pacer(pace_config(
            mode="jittered", interval_ns=1_000.0, jitter_ns=300.0, seed=12
        ))
        assert gaps != [other.next_gap_ns() for _ in range(64)]

    def test_note_slot_counts_and_syncs_adaptive_interval(self):
        pacer = Pacer(pace_config(adaptive=True, epoch_slots=4))
        for _ in range(4):
            assert pacer.interval_ns == 1_000.0
            pacer.note_slot(queue_depth=0, real=False)
        # An all-idle epoch slows the cadence down (x adjust_factor).
        assert pacer.interval_ns == 2_000.0
        assert pacer.slots == 4
        assert pacer.dummy_slots == 4


# ----------------------------------------------------------------- controller


class TestAdaptiveDummyController:
    def controller(self, **kwargs: object) -> AdaptiveDummyController:
        merged: dict = dict(
            adaptive=True, epoch_slots=4, high_watermark=2, adjust_factor=2.0
        )
        merged.update(kwargs)
        return AdaptiveDummyController(pace_config(**merged))

    def test_requires_adaptive_flag(self):
        with pytest.raises(ConfigError):
            AdaptiveDummyController(pace_config())

    def test_majority_high_speeds_up(self):
        controller = self.controller()
        for depth in (5, 5, 5, 0):
            outcome = controller.observe(depth)
        assert outcome is not None and outcome.changed
        assert outcome.high_marks == 3
        assert controller.interval_ns == 500.0

    def test_all_low_slows_down(self):
        controller = self.controller()
        for _ in range(4):
            outcome = controller.observe(0)
        assert outcome is not None and outcome.low_only
        assert controller.interval_ns == 2_000.0

    def test_mixed_epoch_leaves_cadence_alone(self):
        controller = self.controller()
        for depth in (1, 0, 0, 0):
            outcome = controller.observe(depth)
        assert outcome is not None and not outcome.changed
        assert controller.interval_ns == 1_000.0

    def test_never_adjusts_before_the_boundary(self):
        controller = self.controller()
        assert [controller.observe(9) for _ in range(3)] == [None] * 3
        assert controller.interval_ns == 1_000.0

    def test_bounds_clamp_both_directions(self):
        fast = self.controller(min_interval_ns=600.0, max_interval_ns=8_000.0)
        for _ in range(4):
            fast.observe(9)
        assert fast.interval_ns == 600.0
        slow = self.controller(min_interval_ns=600.0, max_interval_ns=1_500.0)
        for _ in range(4):
            slow.observe(0)
        assert slow.interval_ns == 1_500.0

    def test_epochs_count_and_counters_reset(self):
        controller = self.controller()
        outcomes = [controller.observe(9) for _ in range(8)]
        boundaries = [outcome for outcome in outcomes if outcome is not None]
        assert [outcome.epoch for outcome in boundaries] == [0, 1]
        assert all(outcome.slots == 4 for outcome in boundaries)


# -------------------------------------------------------------- paced service


class TestPacedService:
    def test_zero_load_service_issues_pure_dummies(self):
        """The paced service at zero load is first-class: slots keep
        firing, every one a pure-dummy access, and the emitted trace
        validates and reconstructs the public timeline."""
        ring = RingBufferSink(capacity=100_000)
        tracer = Tracer(sinks=[ring])

        async def scenario():
            service = OramService(
                paced_system(interval_ns=500_000.0), tracer=tracer
            )
            await service.start()
            await asyncio.sleep(0.03)
            await service.stop()
            return service

        service = asyncio.run(scenario())
        assert service.pacer is not None
        assert service.pacer.slots >= 16
        assert service.pacer.dummy_slots == service.pacer.slots
        assert service.engine.completed_requests == 0
        assert service.engine.accesses == service.pacer.slots

        events = [event.to_dict() for event in ring.events]
        ticks = [e for e in events if e["kind"] == "pacer_tick"]
        dummies = [e for e in events if e["kind"] == "pace_dummy_issued"]
        assert len(ticks) == service.pacer.slots
        assert len(dummies) == service.pacer.slots
        assert all(not tick["real"] for tick in ticks)
        assert all(tick["queue_depth"] == 0 for tick in ticks)
        # The public timeline is reconstructible from the tick stream:
        # slot numbers are gapless and timestamps strictly increase.
        assert [tick["slot"] for tick in ticks] == list(range(len(ticks)))
        stamps = [tick["ts_ns"] for tick in ticks]
        assert stamps == sorted(stamps)
        assert validate_lines([json.dumps(e) for e in events]) == []

    def test_idle_paced_trace_matches_label_reconstruction(self):
        """Dummy-slot accesses are real fork-path accesses: the bucket
        trace a paced-idle backend observes still equals the
        deterministic reconstruction from the label sequence."""
        backend = FaultyBackend(InMemoryBackend(), FaultPlan(error_rate=0.0))

        async def scenario():
            service = OramService(
                paced_system(interval_ns=400_000.0), backend=backend
            )
            host, port = await service.start()
            reader, writer = await asyncio.open_connection(host, port)
            for sequence in range(3):
                await protocol.write_message(
                    writer,
                    {"id": sequence, "op": "put", "addr": sequence,
                     "value": f"v{sequence}"},
                )
                assert (await protocol.read_message(reader))["ok"]
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.02)  # pure-dummy tail
            await service.stop()
            return service

        service = asyncio.run(scenario())
        assert service.pacer is not None
        assert service.pacer.dummy_slots > service.engine.real_accesses
        leaves = [record[0] for record in service.engine.records]
        verify_trace_matches_labels(
            service.engine.geometry,
            service.engine.store.backend.trace.events,
            leaves,
        )

    def test_cluster_inline_paced_round_covers_every_shard(self):
        from repro.cluster.service import ClusterService

        ring = RingBufferSink(capacity=100_000)
        tracer = Tracer(sinks=[ring])
        config = SystemConfig.from_overrides(
            {
                "cluster.shards": 2,
                "pace.mode": "fixed",
                "pace.interval_ns": "500000",
            },
            base=SystemConfig(
                oram=small_test_config(6, block_bytes=64),
                cache=CacheConfig(policy="none"),
            ),
        )

        async def scenario():
            service = ClusterService(config, tracer=tracer)
            host, port = await service.start()
            reader, writer = await asyncio.open_connection(host, port)
            await protocol.write_message(
                writer, {"id": 0, "op": "put", "addr": 1, "value": "x"}
            )
            assert (await protocol.read_message(reader))["ok"]
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.02)
            await service.stop()
            return service

        service = asyncio.run(scenario())
        assert service.pacer is not None
        assert service.pacer.slots >= 8
        # One pace slot drives one full dispatch round: every shard is
        # visited once per slot, so the K timelines stay in lockstep.
        assert service.router.rounds == service.pacer.slots
        assert service.router.total_accesses() == 2 * service.router.rounds
        events = [event.to_dict() for event in ring.events]
        assert validate_lines([json.dumps(e) for e in events]) == []

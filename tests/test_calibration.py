"""MPKI calibration of raw access streams through the cache hierarchy."""

from __future__ import annotations

import random

import pytest

from repro.analysis.calibration import (
    CalibrationResult,
    calibrate_stream,
    classify_group,
    raw_hotspot_stream,
)
from repro.errors import ConfigError


class TestCalibrateStream:
    def test_hot_stream_is_mostly_filtered(self):
        """Strong locality -> the caches absorb it -> low MPKI."""
        rng = random.Random(1)
        stream = raw_hotspot_stream(
            30_000, 200_000, rng, hot_fraction=0.001, hot_weight=0.95
        )
        result = calibrate_stream(stream)
        assert result.l1_miss_rate < 0.3
        assert result.mpki < 20

    def test_streaming_access_is_all_misses(self):
        """No reuse -> every access misses the LLC."""
        stream = ((addr, False) for addr in range(30_000))
        result = calibrate_stream(stream)
        # 1 miss per access, ~3 instructions per access -> MPKI ~333.
        assert result.mpki > 250
        assert result.llc_misses == pytest.approx(30_000, rel=0.05)

    def test_locality_orders_mpki(self):
        """More locality must calibrate to lower MPKI — the property
        the benchmark stand-ins encode."""
        results = []
        for hot_weight in (0.5, 0.95):
            rng = random.Random(2)
            stream = raw_hotspot_stream(
                20_000, 100_000, rng, hot_fraction=0.002, hot_weight=hot_weight
            )
            results.append(calibrate_stream(stream).mpki)
        assert results[1] < results[0]

    def test_miss_addresses_collected(self):
        stream = ((addr, False) for addr in range(1000))
        result = calibrate_stream(stream)
        assert result.miss_footprint > 900
        assert len(result.miss_addresses) == result.llc_misses

    def test_keep_misses_off(self):
        stream = ((addr, False) for addr in range(1000))
        result = calibrate_stream(stream, keep_misses=False)
        assert result.miss_addresses == []
        assert result.llc_misses > 0

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigError):
            calibrate_stream(iter([]))

    def test_bad_instruction_ratio_rejected(self):
        with pytest.raises(ConfigError):
            calibrate_stream([(1, False)], instructions_per_access=0)


class TestClassification:
    def test_boundary(self):
        assert classify_group(32.0) == "HG"
        assert classify_group(0.5) == "LG"
        assert classify_group(4.0) == "HG"

    def test_stand_in_groups_match_calibrated_intent(self):
        """The HG/LG split of the SPEC stand-ins sits on the same
        boundary the calibrator uses."""
        from repro.workloads.spec import SPEC_BENCHMARKS

        for spec in SPEC_BENCHMARKS.values():
            assert classify_group(spec.mpki) == spec.group


class TestRawStream:
    def test_stream_shape(self):
        rng = random.Random(3)
        pairs = list(raw_hotspot_stream(500, 1000, rng))
        assert len(pairs) == 500
        assert all(0 <= addr < 1000 for addr, _ in pairs)

    def test_invalid_hot_fraction(self):
        with pytest.raises(ConfigError):
            list(raw_hotspot_stream(10, 100, random.Random(1), hot_fraction=0))

"""Stash behaviour, especially the greedy eviction rule."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StashOverflowError
from repro.oram.blocks import Block
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry


def make_stash(levels: int = 3, capacity: int = 20) -> Stash:
    return Stash(TreeGeometry(levels), capacity)


class TestBasics:
    def test_add_get_pop(self):
        stash = make_stash()
        stash.add(Block(1, 2, "v"))
        assert 1 in stash
        assert stash.get(1).payload == "v"
        assert stash.pop(1).addr == 1
        assert stash.get(1) is None
        assert stash.pop(1) is None

    def test_add_replaces_same_address(self):
        stash = make_stash()
        stash.add(Block(1, 2, "old"))
        stash.add(Block(1, 3, "new"))
        assert len(stash) == 1
        assert stash.get(1).payload == "new"

    def test_add_all_and_addresses(self):
        stash = make_stash()
        stash.add_all([Block(1, 0), Block(2, 0)])
        assert sorted(stash.addresses()) == [1, 2]


class TestEviction:
    def test_eligibility_follows_divergence(self):
        """A block is placeable at (leaf, level) iff its own path passes
        through that bucket."""
        stash = make_stash(levels=3)
        # Block mapped to leaf 0; refilling path-2. Paths 0 (000) and
        # 2 (010) share levels 0-1 and diverge at level 2.
        stash.add(Block(10, 0))
        taken = stash.collect_for_node(leaf=2, level=2, capacity=4)
        assert taken == []
        taken = stash.collect_for_node(leaf=2, level=1, capacity=4)
        assert [block.addr for block in taken] == [10]
        assert 10 not in stash

    def test_capacity_limits_collection(self):
        stash = make_stash(levels=3)
        for addr in range(6):
            stash.add(Block(addr, 5))
        taken = stash.collect_for_node(leaf=5, level=3, capacity=4)
        assert len(taken) == 4
        assert len(stash) == 2

    def test_collected_blocks_leave_the_stash(self):
        stash = make_stash(levels=3)
        stash.add(Block(1, 7))
        stash.collect_for_node(leaf=7, level=3, capacity=4)
        assert len(stash) == 0

    def test_root_accepts_everything(self):
        stash = make_stash(levels=3)
        for addr, leaf in enumerate([0, 3, 5, 7]):
            stash.add(Block(addr, leaf))
        taken = stash.collect_for_node(leaf=2, level=0, capacity=8)
        assert len(taken) == 4


class TestAccounting:
    def test_max_occupancy_tracks_high_water(self):
        stash = make_stash()
        for addr in range(5):
            stash.add(Block(addr, 0))
        for addr in range(5):
            stash.pop(addr)
        assert stash.max_occupancy == 5

    def test_occupancy_samples(self):
        stash = make_stash()
        stash.add(Block(1, 0))
        assert stash.sample_occupancy() == 1
        assert stash.occupancy_samples == [1]

    def test_overflow_raises_with_details(self):
        stash = make_stash(capacity=2)
        for addr in range(3):
            stash.add(Block(addr, 0))
        with pytest.raises(StashOverflowError) as excinfo:
            stash.check_persistent_occupancy()
        assert excinfo.value.occupancy == 3
        assert excinfo.value.capacity == 2

    def test_slack_allows_retained_buckets(self):
        stash = make_stash(capacity=2)
        for addr in range(3):
            stash.add(Block(addr, 0))
        stash.check_persistent_occupancy(slack=1)  # no raise


@settings(max_examples=100, deadline=None)
@given(
    levels=st.integers(1, 8),
    leaves=st.lists(st.integers(0, 255), min_size=1, max_size=30),
    refill_leaf=st.integers(0, 255),
)
def test_collect_respects_path_membership(levels, leaves, refill_leaf):
    """Every collected block's path must contain the refilled bucket."""
    tree = TreeGeometry(levels)
    stash = Stash(tree, capacity=100)
    refill_leaf %= tree.num_leaves
    for addr, leaf in enumerate(leaves):
        stash.add(Block(addr, leaf % tree.num_leaves))
    for level in range(levels, -1, -1):
        node = tree.path_node_at(refill_leaf, level)
        for block in stash.collect_for_node(refill_leaf, level, 4):
            assert tree.node_on_path(node, block.leaf)

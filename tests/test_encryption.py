"""Counter-mode bucket encryption."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DecryptionError
from repro.oram.blocks import Block, Bucket
from repro.oram.encryption import (
    CounterModeCipher,
    NullCipher,
    make_cipher,
)


def bucket_with(*blocks: Block, capacity: int = 4) -> Bucket:
    bucket = Bucket(capacity)
    for block in blocks:
        bucket.add(block)
    return bucket


class TestNullCipher:
    def test_roundtrip(self):
        cipher = NullCipher()
        bucket = bucket_with(Block(1, 2, 42))
        sealed = cipher.seal(bucket, 4)
        opened = cipher.open(sealed, 4)
        assert opened.find(1).payload == 42

    def test_seal_copies_so_later_mutation_is_isolated(self):
        cipher = NullCipher()
        block = Block(1, 2, 42)
        sealed = cipher.seal(bucket_with(block), 4)
        block.payload = 99
        assert cipher.open(sealed, 4).find(1).payload == 42

    def test_counter_freshness(self):
        cipher = NullCipher()
        bucket = bucket_with(Block(1, 2, 42))
        first = cipher.seal(bucket, 4)
        second = cipher.seal(bucket, 4)
        assert first[0] != second[0]


class TestCounterModeCipher:
    def setup_method(self):
        self.cipher = CounterModeCipher(b"test-key", block_bytes=16)

    def test_roundtrip_bytes_payload(self):
        bucket = bucket_with(Block(3, 5, b"hello"))
        opened = self.cipher.open(self.cipher.seal(bucket, 4), 4)
        block = opened.find(3)
        assert block.leaf == 5
        assert block.payload.rstrip(b"\x00") == b"hello"

    def test_roundtrip_int_payload(self):
        bucket = bucket_with(Block(3, 5, 1234567))
        opened = self.cipher.open(self.cipher.seal(bucket, 4), 4)
        value = int.from_bytes(opened.find(3).payload, "little", signed=True)
        assert value == 1234567

    def test_probabilistic_reencryption(self):
        """The same plaintext bucket seals to different ciphertexts."""
        bucket = bucket_with(Block(1, 1, b"same"))
        assert self.cipher.seal(bucket, 4) != self.cipher.seal(bucket, 4)

    def test_empty_and_full_buckets_same_ciphertext_length(self):
        """Dummy and real slots must be indistinguishable by length."""
        empty = self.cipher.seal(Bucket(4), 4)
        full = self.cipher.seal(
            bucket_with(*(Block(i, 0, b"x") for i in range(4))), 4
        )
        assert len(empty) == len(full)

    def test_ciphertext_body_looks_random(self):
        """No plaintext byte pattern survives in the sealed body."""
        bucket = bucket_with(Block(1, 1, b"A" * 16))
        sealed = self.cipher.seal(bucket, 4)
        assert b"A" * 8 not in sealed[16:]

    def test_wrong_length_rejected(self):
        with pytest.raises(DecryptionError):
            self.cipher.open(b"short", 4)

    def test_non_bytes_rejected(self):
        with pytest.raises(DecryptionError):
            self.cipher.open(12345, 4)

    def test_oversized_payload_rejected(self):
        bucket = bucket_with(Block(1, 1, b"x" * 17))
        with pytest.raises(ConfigError):
            self.cipher.seal(bucket, 4)

    def test_object_payload_rejected(self):
        bucket = bucket_with(Block(1, 1, ("tuple",)))
        with pytest.raises(ConfigError):
            self.cipher.seal(bucket, 4)

    def test_overfull_bucket_rejected(self):
        bucket = bucket_with(Block(1, 0), Block(2, 0), capacity=4)
        with pytest.raises(ConfigError):
            self.cipher.seal(bucket, 1)

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigError):
            CounterModeCipher(b"", 16)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_cipher("null"), NullCipher)
        assert isinstance(make_cipher("counter"), CounterModeCipher)
        with pytest.raises(ConfigError):
            make_cipher("rot13")


@settings(max_examples=50, deadline=None)
@given(
    payloads=st.lists(
        st.binary(min_size=0, max_size=16), min_size=0, max_size=4
    ),
    leaf=st.integers(0, 1000),
)
def test_roundtrip_property(payloads, leaf):
    cipher = CounterModeCipher(b"k", block_bytes=16)
    bucket = Bucket(4)
    for index, payload in enumerate(payloads):
        bucket.add(Block(index + 1, leaf, payload))
    opened = cipher.open(cipher.seal(bucket, 4), 4)
    assert len(opened) == len(payloads)
    for index, payload in enumerate(payloads):
        stored = opened.find(index + 1)
        assert stored.leaf == leaf
        assert stored.payload == payload.ljust(16, b"\x00")

"""The ``Simulation`` façade, config overrides, and the CLI glue."""

from __future__ import annotations

import random
import warnings

import pytest

from repro import (
    CacheConfig,
    ConfigError,
    ForkPathController,
    RunResult,
    Simulation,
    SystemConfig,
    TraceSource,
    fork_path_scheduler,
    simulate_system,
    small_test_config,
)
from repro.obs import RingBufferSink, Tracer
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.synthetic import uniform_trace


def config() -> SystemConfig:
    from repro import ProcessorConfig

    return SystemConfig(
        oram=small_test_config(8),
        scheduler=fork_path_scheduler(16),
        cache=CacheConfig(policy="none"),
        processor=ProcessorConfig(num_cores=2, mlp=4),
    )


def trace(requests: int = 120):
    return uniform_trace(
        requests, 200, 40.0, random.Random(3), write_fraction=0.3
    )


def tiny_benchmarks():
    spec = BenchmarkSpec(
        name="toy",
        suite="synthetic",
        group="HG",
        mpki=30.0,
        footprint_blocks=40,
        write_fraction=0.3,
    )
    return [spec, spec]


class TestRun:
    def test_defaults_to_default_config(self):
        assert Simulation().config == SystemConfig()

    def test_matches_hand_built_controller(self):
        """The façade is sugar — same seeds, same simulation."""
        facade = Simulation(config()).run(trace(), rng=random.Random(4))
        manual = ForkPathController(
            config(), TraceSource(trace()), rng=random.Random(4)
        ).run()
        assert facade.metrics.summary() == manual.summary()

    def test_result_shape(self):
        result = Simulation(config()).run(trace())
        assert isinstance(result, RunResult)
        assert result.full_system is None
        assert result.slowdown == 0.0
        assert result.records is result.metrics.records
        assert result.controller is not None
        assert result.energy.total_mj > 0
        assert result.trace is None
        assert "energy_mj" in result.summary()

    def test_accepts_arrival_source_and_sequence(self):
        from_sequence = Simulation(config()).run(trace(),
                                                 rng=random.Random(4))
        from_source = Simulation(config()).run(
            TraceSource(trace()), rng=random.Random(4)
        )
        assert (from_sequence.metrics.summary()
                == from_source.metrics.summary())

    def test_run_caps_forwarded(self):
        result = Simulation(config()).run(trace(), max_requests=10)
        assert result.metrics.real_completed >= 10
        assert result.metrics.real_completed < 120

    def test_tracer_closed_after_run(self):
        tracer = Tracer(sinks=[RingBufferSink()])
        result = Simulation(config()).run(trace(), tracer=tracer)
        assert result.trace is tracer
        assert tracer._closed
        assert "observability" in result.summary()


class TestRunSystem:
    def test_populates_full_system(self):
        result = Simulation(config()).run_system(
            tiny_benchmarks(), requests_per_core=25
        )
        assert result.full_system is not None
        assert result.slowdown > 0
        summary = result.summary()
        assert summary["slowdown"] == result.slowdown
        assert "insecure_finish_ns" in summary

    def test_footprint_checked_eagerly(self):
        big = BenchmarkSpec(
            name="big",
            suite="synthetic",
            group="HG",
            mpki=30.0,
            footprint_blocks=10**9,
            write_fraction=0.3,
        )
        with pytest.raises(ConfigError):
            Simulation(config()).run_system([big, big], requests_per_core=5)

    def test_traced_system_run_brackets_and_core_counters(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        Simulation(config()).run_system(
            tiny_benchmarks(), tracer=tracer, requests_per_core=25
        )
        assert ring.events[0].kind == "run_started"
        assert ring.events[-1].kind == "run_finished"
        assert tracer.counters.get("cores.count") == 2
        assert tracer.counters.get("cores.issued") == 50

    def test_deprecated_wrapper_matches_facade(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = simulate_system(
                config(), tiny_benchmarks(), requests_per_core=25
            )
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        modern = Simulation(config()).run_system(
            tiny_benchmarks(), requests_per_core=25
        )
        assert legacy.metrics.summary() == modern.metrics.summary()
        assert legacy.slowdown == modern.slowdown


class TestFromOverrides:
    def test_dotted_and_kwarg_forms(self):
        built = SystemConfig.from_overrides(
            {"scheduler.label_queue_size": 128, "dram.timing.t_cas_ns": 12.5},
            nonstop=False,
            cache__policy="treetop",
        )
        assert built.scheduler.label_queue_size == 128
        assert built.dram.timing.t_cas_ns == 12.5
        assert built.nonstop is False
        assert built.cache.policy == "treetop"

    def test_string_values_coerced(self):
        built = SystemConfig.from_overrides(
            {
                "scheduler.label_queue_size": "0x20",
                "idle_gap_ns": "2.5",
                "nonstop": "false",
                "cache.policy": "none",
            }
        )
        assert built.scheduler.label_queue_size == 32
        assert built.idle_gap_ns == 2.5
        assert built.nonstop is False
        assert built.cache.policy == "none"

    def test_unknown_key_raises_and_lists_valid(self):
        with pytest.raises(ConfigError, match="label_queue_size"):
            SystemConfig.from_overrides({"scheduler.labelqueue": 1})
        with pytest.raises(ConfigError, match="unknown config key"):
            SystemConfig.from_overrides({"bogus": 1})

    def test_section_requires_leaf(self):
        with pytest.raises(ConfigError, match="config section"):
            SystemConfig.from_overrides({"scheduler": 5})
        with pytest.raises(ConfigError, match="plain value"):
            SystemConfig.from_overrides({"seed.x": 1})

    def test_bad_value_type_raises(self):
        with pytest.raises(ConfigError, match="cannot parse"):
            SystemConfig.from_overrides({"oram.levels": "many"})
        with pytest.raises(ConfigError, match="bool"):
            SystemConfig.from_overrides({"nonstop": "perhaps"})

    def test_section_validation_still_eager(self):
        with pytest.raises(ConfigError):
            SystemConfig.from_overrides({"scheduler.label_queue_size": 0})

    def test_levels_override_rederives_num_blocks(self):
        smaller = SystemConfig.from_overrides({"oram.levels": 8})
        assert smaller.oram.levels == 8
        assert smaller.oram.num_blocks == smaller.oram.max_data_blocks()

    def test_pinned_num_blocks_survives(self):
        base = SystemConfig.from_overrides(
            {"oram.levels": 10, "oram.num_blocks": 64}
        )
        shrunk = SystemConfig.from_overrides({"oram.levels": 8}, base=base)
        assert shrunk.oram.num_blocks == 64

    def test_base_untouched(self):
        base = SystemConfig()
        SystemConfig.from_overrides({"seed": 99}, base=base)
        assert base.seed == 0


class TestCliSet:
    def test_parse_overrides(self):
        from repro.cli import _parse_overrides

        assert _parse_overrides(["a.b=1", "c=x=y"]) == {
            "a.b": "1", "c": "x=y"
        }
        assert _parse_overrides(None) == {}
        with pytest.raises(SystemExit):
            _parse_overrides(["novalue"])

    def test_demo_accepts_set_and_trace(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.schema import validate_file

        target = tmp_path / "demo.jsonl"
        code = main([
            "demo",
            "--set", "oram.levels=8",
            "--set", "scheduler.label_queue_size=8",
            "--trace", str(target),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fork path" in out
        for slug in ("traditional", "forkpath"):
            path = tmp_path / f"demo.{slug}.jsonl"
            assert path.exists()
            assert validate_file(str(path)) == []

    def test_bad_set_key_fails_fast(self):
        from repro.cli import main

        with pytest.raises(ConfigError, match="unknown config key"):
            main(["demo", "--set", "oram.bogus=1"])

"""The experiment harness plumbing itself."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import CacheConfig, DramConfig, SchedulerConfig
from repro.errors import ConfigError
from repro.experiments.common import (
    MEDIUM,
    PAPER,
    SMALL,
    FigureResult,
    Scale,
    base_config,
    figure_variants,
    run_saturating_trace,
    traditional_config,
)


class TestScales:
    def test_small_subset_of_mixes(self):
        assert set(SMALL.mixes) < {f"Mix{i}" for i in range(1, 11)}

    def test_medium_and_paper_cover_all_mixes(self):
        assert len(MEDIUM.mixes) == 10
        assert len(PAPER.mixes) == 10

    def test_paper_scale_matches_table1(self):
        assert PAPER.levels == 24
        assert PAPER.recursion

    def test_scales_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SMALL.levels = 3  # type: ignore[misc]


class TestConfigBuilders:
    def test_base_config_wires_scale(self):
        config = base_config(SMALL)
        assert config.oram.levels == SMALL.levels
        assert config.oram.stash_capacity == SMALL.stash_capacity
        assert not config.recursion.enabled

    def test_paper_scale_enables_recursion(self):
        config = base_config(PAPER)
        assert config.recursion.enabled

    def test_overrides_pass_through(self):
        config = base_config(
            SMALL,
            scheduler=SchedulerConfig(label_queue_size=5),
            cache=CacheConfig(policy="treetop", capacity_bytes=1 << 16),
            dram=DramConfig(channels=4),
        )
        assert config.scheduler.label_queue_size == 5
        assert config.cache.policy == "treetop"
        assert config.dram.channels == 4

    def test_traditional_config_disables_everything(self):
        config = traditional_config(SMALL)
        assert not config.scheduler.enable_merging
        assert not config.scheduler.enable_scheduling
        assert config.scheduler.label_queue_size == 1

    def test_figure_variants_configs_are_distinct(self):
        variants = dict(figure_variants(SMALL))
        assert variants["Merge+128K MAC"].cache.capacity_bytes == 128 * 1024
        assert variants["Merge+1M Treetop"].cache.policy == "treetop"
        assert variants["Merge only"].cache.policy == "none"


class TestFigureResult:
    def test_csv_round_trip(self):
        result = FigureResult("F", "title", ["name", "value"])
        result.add("a", 1.5)
        result.add("b", 2)
        csv_text = result.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"

    def test_save_writes_txt_and_csv(self, tmp_path):
        result = FigureResult("F", "title", ["x"])
        result.add(1)
        result.save(tmp_path / "out")
        assert (tmp_path / "out.txt").exists()
        assert (tmp_path / "out.csv").read_text().startswith("x")

    def test_unknown_series(self):
        result = FigureResult("F", "t", ["x"])
        with pytest.raises(ValueError):
            result.series("y")


class TestRunners:
    def test_saturating_trace_keeps_queue_busy(self):
        scale = Scale(
            name="unit",
            levels=8,
            instructions_per_core=0,
            trace_requests=200,
            mixes=(),
            footprint_cap=None,
        )
        from repro import fork_path_scheduler

        metrics = run_saturating_trace(
            base_config(scale, scheduler=fork_path_scheduler(8)), scale
        )
        assert metrics.real_completed == 200
        # Saturation: merging gets real overlap to work with.
        assert metrics.avg_path_buckets < scale.levels + 1

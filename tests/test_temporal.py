"""Tests for ``repro.security.temporal`` — the timing-channel verifier.

Synthetic-timeline unit tests pin down each statistical bar (sample
floor, gap KS distance, arrival cross-correlation and its dispersion
guard), and one in-process end-to-end test runs the full experiment:
a paced service's bursty-load timeline passes against its idle
baseline, while ``pace.mode="off"`` fails — the teeth CI relies on
(``scripts/timing_smoke.py`` is the same experiment at larger scale).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.config import (
    CacheConfig,
    PaceConfig,
    SchedulerConfig,
    SystemConfig,
    small_test_config,
)
from repro.errors import ConfigError
from repro.obs.sinks import RingBufferSink
from repro.obs.tracer import Tracer
from repro.security.temporal import (
    arrivals_from_events,
    cross_correlation,
    gap_ks_test,
    inter_access_gaps,
    issues_from_events,
    verify_temporal_independence,
)
from repro.serve.loadgen import run_loadgen
from repro.serve.service import OramService


def paced_timeline(seed: int, count: int = 200, gap: float = 1_000.0):
    """A clock-driven issue timeline: fixed gap plus small jitter."""
    rng = random.Random(seed)
    out, t = [], 0.0
    for _ in range(count):
        t += gap + rng.uniform(0.0, gap / 10.0)
        out.append(t)
    return out


def bursty_arrivals(count: int = 50, gap: float = 50.0):
    """Two dense request volleys separated by a long silence."""
    return [i * gap for i in range(count)] + [
        1_000 * gap + i * gap for i in range(count)
    ]


# ------------------------------------------------------------------ unit bars


class TestStatistics:
    def test_gaps_are_sorted_diffs(self):
        assert inter_access_gaps([30.0, 10.0, 15.0]) == [5.0, 15.0]

    def test_ks_separates_clock_from_load_driven(self):
        clocked = paced_timeline(1)
        arrivals = bursty_arrivals()
        chased = [t + 10.0 for t in arrivals]  # issue follows arrival
        same_distance, _ = gap_ks_test(clocked, paced_timeline(2))
        diff_distance, diff_pvalue = gap_ks_test(clocked, chased)
        assert same_distance < 0.2
        assert diff_distance > 0.8 and diff_pvalue < 0.001

    def test_correlation_catches_arrival_chasing(self):
        arrivals = bursty_arrivals()
        chased = [t + 10.0 for t in arrivals]
        assert cross_correlation(arrivals, chased) > 0.9

    def test_underdispersed_issue_series_cannot_correlate(self):
        """A constant-rate (sub-Poisson) issue series carries no
        arrival-shaped signal: the dispersion guard zeroes the
        statistic instead of letting sparse arrival spikes correlate
        with ±1 binning noise."""
        arrivals = [5_000.0, 5_100.0, 5_200.0, 150_000.0, 150_100.0]
        assert cross_correlation(arrivals, paced_timeline(9)) == 0.0

    def test_empty_series_scores_zero(self):
        assert cross_correlation([], [1.0]) == 0.0
        assert cross_correlation([1.0], []) == 0.0
        assert cross_correlation([1.0], [1.0]) == 0.0


class TestVerdict:
    def test_paced_profiles_pass(self):
        verdict = verify_temporal_independence(
            paced_timeline(1), paced_timeline(9), bursty_arrivals()
        )
        assert verdict.ok, verdict.failures
        assert "PASS" in verdict.summary()

    def test_unpaced_idle_baseline_fails_sample_floor(self):
        arrivals = bursty_arrivals()
        chased = [t + 10.0 for t in arrivals]
        verdict = verify_temporal_independence([0.0, 90_000.0], chased, arrivals)
        assert not verdict.ok
        assert any("baseline issued only" in f for f in verdict.failures)

    def test_unpaced_busy_run_fails_both_statistical_bars(self):
        arrivals = bursty_arrivals()
        chased = [t + 10.0 for t in arrivals]
        verdict = verify_temporal_independence(
            paced_timeline(1), chased, arrivals
        )
        assert not verdict.ok
        assert any("gap distributions differ" in f for f in verdict.failures)
        assert any("correlates with arrivals" in f for f in verdict.failures)
        assert "FAIL" in verdict.summary()

    def test_event_extractors(self):
        events = [
            {"kind": "service_admitted", "ts_ns": 150.0, "wait_ns": 50.0},
            {"kind": "pacer_tick", "ts_ns": 200.0},
            {"kind": "service_completed", "ts_ns": 300.0},
            {"kind": "pacer_tick", "ts_ns": 400.0},
        ]
        assert arrivals_from_events(events) == [100.0]
        assert issues_from_events(events) == [200.0, 400.0]


# ----------------------------------------------------------------- end-to-end


def _system(pace: PaceConfig) -> SystemConfig:
    return SystemConfig(
        oram=small_test_config(6, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
        pace=pace,
    )


def _run_profiles(config: SystemConfig, idle_s: float = 0.35):
    """One idle run and one bursty open-loop run; returns both issue
    timelines plus the bursty run's arrival times (engine clocks)."""

    async def scenario():
        ring = RingBufferSink(capacity=100_000)
        idle = OramService(config, tracer=Tracer(sinks=[ring]))
        await idle.start()
        await asyncio.sleep(idle_s)
        await idle.stop()
        baseline = list(idle.engine.access_times_ns)

        busy = OramService(config)
        host, port = await busy.start()
        result = await run_loadgen(
            host,
            port,
            clients=2,
            requests=30,
            num_blocks=config.oram.num_blocks,
            arrival="burst",
            rate=300.0,
            seed=5,
        )
        await busy.stop()
        assert (result.lost, result.mismatches) == (0, 0)
        # The loadgen's send stamps share perf_counter_ns with the
        # engine's relative clock up to the service start offset, which
        # binning absorbs; re-base to the engine span for cleanliness.
        issues = list(busy.engine.access_times_ns)
        span = busy.engine.access_times_ns[0] if issues else 0.0
        base = min(result.send_times_ns) if result.send_times_ns else 0.0
        arrivals = [t - base + span for t in result.send_times_ns]
        return baseline, issues, arrivals

    return asyncio.run(scenario())


class TestEndToEnd:
    def test_paced_service_passes_and_off_fails(self):
        # Jittered mode with the interval comfortably above the
        # per-access cost: the configured jitter dominates OS
        # scheduling noise, which is exactly how the mode is meant to
        # be deployed (docs/TEMPORAL.md).
        paced = _system(
            PaceConfig(
                mode="jittered",
                interval_ns=3_000_000.0,
                jitter_ns=2_000_000.0,
                seed=3,
            )
        )
        baseline, issues, arrivals = _run_profiles(paced)
        verdict = verify_temporal_independence(baseline, issues, arrivals)
        assert verdict.ok, verdict.failures

        off = _system(PaceConfig())
        off_baseline, off_issues, off_arrivals = _run_profiles(off)
        off_verdict = verify_temporal_independence(
            off_baseline, off_issues, off_arrivals
        )
        # With pacing off the idle service issues (almost) no accesses
        # — the timeline itself announces the load level.
        assert not off_verdict.ok
        assert len(off_baseline) < 16


class TestLoadgenSchedules:
    def test_arrival_offsets_deterministic_and_mean_rate(self):
        from repro.serve.loadgen import arrival_offsets_s

        for mode in ("poisson", "burst", "onoff"):
            first = arrival_offsets_s(mode, 64, 200.0, random.Random(3))
            again = arrival_offsets_s(mode, 64, 200.0, random.Random(3))
            assert first == again
            assert first == sorted(first)
            span = first[-1] - first[0]
            assert 0.1 < span < 1.0  # 64 requests at ~200/s

    def test_closed_and_bad_modes_rejected(self):
        from repro.serve.loadgen import arrival_offsets_s, tenant_weights

        with pytest.raises(ConfigError):
            arrival_offsets_s("closed", 10, 100.0, random.Random(1))
        with pytest.raises(ConfigError):
            arrival_offsets_s("poisson", 10, 0.0, random.Random(1))
        with pytest.raises(ConfigError):
            tenant_weights(0, 1.0)
        with pytest.raises(ConfigError):
            tenant_weights(4, -1.0)

    def test_tenant_weights_zipfish(self):
        from repro.serve.loadgen import tenant_weights

        assert tenant_weights(3, 0.0) == [1.0, 1.0, 1.0]
        assert tenant_weights(3, 1.0) == [1.0, 0.5, pytest.approx(1 / 3)]

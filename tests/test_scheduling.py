"""The label queue: padding, takeover, overlap scheduling, aging."""

from __future__ import annotations

import random

import pytest

from repro.config import SchedulerConfig
from repro.core.requests import LabelEntry, LlcRequest
from repro.core.scheduling import LabelQueue
from repro.errors import ProtocolError
from repro.oram.tree import TreeGeometry


def make_queue(
    size: int = 4, levels: int = 4, **kwargs
) -> LabelQueue:
    config = SchedulerConfig(label_queue_size=size, **kwargs)
    return LabelQueue(TreeGeometry(levels), config, random.Random(7))


def real_entry(leaf: int, enqueue_ns: float = 0.0) -> LabelEntry:
    request = LlcRequest(addr=leaf, is_write=False)
    return LabelEntry(
        leaf=leaf, target_addr=leaf, new_leaf=0, request=request,
        enqueue_ns=enqueue_ns,
    )


class TestPadding:
    def test_top_up_fills_to_fixed_size(self):
        queue = make_queue(size=5)
        queue.top_up(0.0)
        assert len(queue) == 5
        assert queue.dummy_count() == 5

    def test_queue_size_is_occupancy_invariant(self):
        """Security: after any select, the next top-up restores the
        fixed size regardless of how many reals are pending."""
        queue = make_queue(size=4)
        queue.top_up(0.0)
        queue.insert_real(real_entry(3))
        for _ in range(10):
            queue.select_next(2, 0.0)
            queue.top_up(0.0)
            assert len(queue) == 4


class TestInsertReal:
    def test_takes_over_first_dummy(self):
        queue = make_queue(size=3)
        queue.top_up(0.0)
        queue.insert_real(real_entry(1))
        assert queue.real_count() == 1
        assert queue.dummy_count() == 2
        assert len(queue) == 3
        assert queue.dummies_taken_over == 1

    def test_appends_when_not_full(self):
        queue = make_queue(size=3)
        queue.insert_real(real_entry(1))
        assert len(queue) == 1

    def test_saturation_raises(self):
        queue = make_queue(size=2)
        queue.insert_real(real_entry(1))
        queue.insert_real(real_entry(2))
        assert not queue.has_room_for_real()
        with pytest.raises(ProtocolError):
            queue.insert_real(real_entry(3))

    def test_dummy_entry_rejected(self):
        queue = make_queue()
        with pytest.raises(ProtocolError):
            queue.insert_real(LabelEntry(leaf=0))


class TestSelection:
    def test_max_overlap_wins(self):
        queue = make_queue(size=3, levels=3)
        # current = path-1; candidates 7 (overlap 1), 0 (overlap 3).
        queue.insert_real(real_entry(7))
        queue.insert_real(real_entry(0))
        queue.top_up(0.0)
        chosen = queue.select_next(1, 0.0)
        assert chosen.leaf == 0

    def test_real_beats_dummy_on_tie(self):
        queue = make_queue(size=2, levels=3)
        queue.insert_real(real_entry(0))
        # Force the one dummy to the same leaf -> equal overlap.
        queue.top_up(0.0)
        for entry in queue.entries:
            if entry.is_dummy:
                entry.leaf = 0
        chosen = queue.select_next(1, 0.0)
        assert chosen.is_real

    def test_dummy_with_strictly_higher_overlap_wins(self):
        """Security requires dummies to compete on equal terms."""
        queue = make_queue(size=2, levels=3)
        queue.insert_real(real_entry(7))  # overlap 1 with current 1
        queue.top_up(0.0)
        for entry in queue.entries:
            if entry.is_dummy:
                entry.leaf = 0  # overlap 3 with current 1
        chosen = queue.select_next(1, 0.0)
        assert chosen.is_dummy

    def test_fifo_when_scheduling_disabled(self):
        queue = make_queue(size=3, enable_scheduling=False)
        queue.insert_real(real_entry(7, enqueue_ns=1.0))
        queue.insert_real(real_entry(0, enqueue_ns=2.0))
        chosen = queue.select_next(1, 0.0)
        assert chosen.leaf == 7  # arrival order, not overlap

    def test_fifo_prefers_real_over_leading_dummy(self):
        queue = make_queue(size=3, enable_scheduling=False)
        queue.top_up(0.0)
        queue.entries[2] = real_entry(5)
        chosen = queue.select_next(None, 0.0)
        assert chosen.is_real

    def test_bootstrap_without_current_leaf(self):
        queue = make_queue(size=2)
        queue.insert_real(real_entry(3))
        chosen = queue.select_next(None, 0.0)
        assert chosen.is_real


class TestAging:
    def test_aged_entry_is_promoted(self):
        queue = make_queue(size=3, levels=3, aging_threshold=2)
        starved = real_entry(7)  # minimal overlap with current 0
        queue.insert_real(starved)
        queue.top_up(0.0)
        # Keep feeding high-overlap dummies; after the threshold the
        # starved real must win regardless of overlap.
        winners = []
        for _ in range(4):
            for entry in queue.entries:
                if entry.is_dummy:
                    entry.leaf = 0
            winners.append(queue.select_next(0, 0.0))
            queue.top_up(0.0)
        assert any(winner is starved for winner in winners[:3])

    def test_age_increments_only_for_passed_over_reals(self):
        queue = make_queue(size=3, levels=3)
        entry = real_entry(7)
        queue.insert_real(entry)
        queue.top_up(0.0)
        for target in queue.entries:
            if target.is_dummy:
                target.leaf = 0
        queue.select_next(0, 0.0)
        assert entry.age == 1


class TestDummyRefreshAblation:
    def test_refresh_redraws_queued_dummy_labels(self):
        queue = make_queue(size=8, refresh_dummies=True)
        queue.top_up(0.0)
        before = [entry.leaf for entry in queue.entries]
        queue.select_next(0, 0.0)
        queue.top_up(0.0)
        after = [entry.leaf for entry in queue.entries]
        assert before != after  # overwhelmingly likely with 8 labels

    def test_default_keeps_dummy_labels(self):
        queue = make_queue(size=8)
        queue.top_up(0.0)
        survivors = {id(entry): entry.leaf for entry in queue.entries}
        queue.select_next(0, 0.0)
        for entry in queue.entries:
            assert survivors[id(entry)] == entry.leaf

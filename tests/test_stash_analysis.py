"""Unit coverage of the stash-analysis experiment helpers."""

from __future__ import annotations

import dataclasses

from repro.experiments import stash_analysis
from repro.experiments.common import SMALL


class TestOccupancyTail:
    def test_summary_fields(self):
        tail = stash_analysis.occupancy_tail([1, 2, 3, 4, 100])
        assert tail["mean"] == 22.0
        assert tail["max"] == 100.0
        assert tail["p99"] == 100.0


class TestUtilizationSweep:
    def test_pressure_grows_with_utilisation(self):
        result = stash_analysis.run_utilization_sweep(
            levels=8, utilizations=(0.5, 1.0), accesses=800
        )
        by_util = {row[0]: row for row in result.rows}
        assert by_util[1.0][3] > by_util[0.5][3]  # max occupancy
        assert by_util[0.5][2] < 20  # p99 negligible at 50%


class TestMergingComparison:
    def test_fork_occupancy_within_envelope(self):
        scale = dataclasses.replace(SMALL, levels=10, trace_requests=600)
        result = stash_analysis.run_merging_comparison(scale)
        rows = {row[0]: row for row in result.rows}
        fork_max = rows["fork path q=64"][3]
        allowance = rows["fork path q=64"][4]
        assert fork_max <= allowance

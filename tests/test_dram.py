"""DRAM substrate: layouts, bank/row timing, channels, energy."""

from __future__ import annotations

import pytest

from repro.config import DramConfig, DramTimingConfig
from repro.dram.energy import EnergyModel, EnergyParams
from repro.dram.layout import FlatLayout, SubtreeLayout, make_layout
from repro.dram.model import DramModel
from repro.errors import ConfigError
from repro.oram.tree import TreeGeometry


BUCKET_BYTES = 256  # Z=4 x 64 B


def make_model(levels: int = 10, **dram_kwargs) -> DramModel:
    config = DramConfig(**dram_kwargs)
    return DramModel(TreeGeometry(levels), config, BUCKET_BYTES)


class TestSubtreeLayout:
    def setup_method(self):
        self.tree = TreeGeometry(12)
        self.layout = SubtreeLayout(self.tree, DramConfig(), BUCKET_BYTES)

    def test_subtree_levels_fit_one_row(self):
        # 8 KB row / 256 B bucket = 32 buckets -> 5-level subtrees (31).
        assert self.layout.subtree_levels == 5

    def test_root_subtree_holds_top_levels(self):
        for leaf_bits in range(4):
            node = self.tree.path_node_at(0, leaf_bits)
            subtree, _pos = self.layout.subtree_of(node)
            assert subtree == 0

    def test_path_touches_few_distinct_rows(self):
        """The point of the layout: ceil((L+1)/s) rows per path."""
        rows = {
            (loc.channel, loc.bank, loc.row)
            for loc in map(self.layout.locate, self.tree.path_nodes(1234))
        }
        assert len(rows) == -(-13 // 5)  # ceil(13 / 5) = 3

    def test_positions_within_subtree_unique(self):
        seen = {}
        for node in range(self.tree.num_nodes // 4):
            subtree, position = self.layout.subtree_of(node)
            key = (subtree, position)
            assert key not in seen, f"collision at node {node}"
            seen[key] = node

    def test_locations_unique(self):
        seen = set()
        for node in range(2000):
            loc = self.layout.locate(node)
            key = (loc.channel, loc.bank, loc.row, loc.col_byte)
            assert key not in seen
            seen.add(key)

    def test_explicit_subtree_levels_validated(self):
        with pytest.raises(ConfigError):
            SubtreeLayout(
                self.tree, DramConfig(subtree_levels=6), BUCKET_BYTES
            )  # 63 buckets > 32 per row

    def test_bucket_must_fit_row(self):
        with pytest.raises(ConfigError):
            SubtreeLayout(self.tree, DramConfig(), 16 * 1024)


class TestFlatLayout:
    def test_heap_order_rows(self):
        tree = TreeGeometry(10)
        layout = FlatLayout(tree, DramConfig(), BUCKET_BYTES)
        assert layout.buckets_per_row == 32
        first = layout.locate(0)
        same_row = layout.locate(31)
        next_row = layout.locate(32)
        assert (first.channel, first.bank, first.row) == (
            same_row.channel,
            same_row.bank,
            same_row.row,
        )
        assert (first.channel, first.row) != (next_row.channel, next_row.row)

    def test_path_scatters_across_rows(self):
        """The ablation point: heap order gives ~one row per level."""
        tree = TreeGeometry(12)
        layout = FlatLayout(tree, DramConfig(), BUCKET_BYTES)
        rows = {
            (loc.channel, loc.bank, loc.row)
            for loc in map(layout.locate, tree.path_nodes(1234))
        }
        assert len(rows) >= 8

    def test_factory(self):
        tree = TreeGeometry(4)
        assert isinstance(
            make_layout(tree, DramConfig(layout="subtree"), 256), SubtreeLayout
        )
        assert isinstance(
            make_layout(tree, DramConfig(layout="flat"), 256), FlatLayout
        )


class TestTimingModel:
    def test_row_hit_faster_than_miss(self):
        model = make_model()
        timing = DramTimingConfig()
        miss = model.idle_latency_ns(row_hit=False)
        hit = model.idle_latency_ns(row_hit=True)
        assert miss - hit == pytest.approx(timing.t_rcd_ns)

    def test_first_access_is_row_miss_then_hits(self):
        model = make_model()
        # Two buckets in the same subtree row.
        model.access(0, False, 0.0)
        assert model.stats.row_misses == 1
        model.access(1, False, 0.0)
        assert model.stats.row_hits == 1

    def test_channel_serialisation(self):
        model = make_model(channels=1)
        first = model.access(0, False, 0.0)
        second = model.access(0, False, 0.0)
        assert second > first

    def test_channels_run_in_parallel(self):
        tree = TreeGeometry(10)
        one = DramModel(tree, DramConfig(channels=1), BUCKET_BYTES)
        two = DramModel(tree, DramConfig(channels=2), BUCKET_BYTES)
        nodes = tree.path_nodes(777)
        assert two.access_many(nodes, False, 0.0) < one.access_many(
            nodes, False, 0.0
        )

    def test_access_many_returns_last_finish(self):
        model = make_model()
        nodes = [0, 1, 2]
        finish = model.access_many(nodes, False, 5.0)
        singles = make_model()
        expected = max(singles.access(node, False, 5.0) for node in nodes)
        assert finish == pytest.approx(expected)

    def test_stats_track_bytes(self):
        model = make_model()
        model.access(0, False, 0.0)
        model.access(1, True, 0.0)
        assert model.stats.bytes_read == BUCKET_BYTES
        assert model.stats.bytes_written == BUCKET_BYTES
        assert model.stats.reads == 1
        assert model.stats.writes == 1

    def test_subtree_layout_beats_flat_on_paths(self):
        tree = TreeGeometry(12)
        subtree = DramModel(tree, DramConfig(layout="subtree"), BUCKET_BYTES)
        flat = DramModel(tree, DramConfig(layout="flat"), BUCKET_BYTES)
        for leaf in (0, 100, 4095, 2048):
            subtree.access_many(tree.path_nodes(leaf), False, 0.0)
            flat.access_many(tree.path_nodes(leaf), False, 0.0)
        assert subtree.stats.row_hit_rate > flat.stats.row_hit_rate


class TestEnergy:
    def test_event_accounting(self):
        energy = EnergyModel(channels=2)
        energy.on_activate()
        energy.on_read(256)
        energy.on_write(256)
        energy.on_cache_access()
        energy.on_controller_op()
        breakdown = energy.breakdown
        assert breakdown.dram_activate_nj == pytest.approx(17.5)
        assert breakdown.dram_read_nj == pytest.approx(25.6)
        assert breakdown.dram_write_nj == pytest.approx(28.16)
        assert breakdown.onchip_nj > 0
        assert breakdown.total_nj == pytest.approx(
            breakdown.dram_nj + breakdown.onchip_nj
        )

    def test_background_scales_with_time_and_channels(self):
        one = EnergyModel(channels=1)
        two = EnergyModel(channels=2)
        one.account_background(1000.0)
        two.account_background(1000.0)
        assert two.breakdown.dram_background_nj == pytest.approx(
            2 * one.breakdown.dram_background_nj
        )

    def test_model_charges_activates_on_row_misses(self):
        model = make_model()
        model.access(0, False, 0.0)  # miss
        model.access(1, False, 0.0)  # hit
        assert model.energy.breakdown.dram_activate_nj == pytest.approx(17.5)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            EnergyParams(activate_nj=-1)
        with pytest.raises(ConfigError):
            EnergyModel(channels=0)
        with pytest.raises(ConfigError):
            EnergyModel().account_background(-1.0)

"""Figure 17: sensitivity to (a) thread count and (b) ORAM size.

Shape targets: more threads -> better relative latency; bigger trees
-> moderately worse relative latency (fixed merge depth).
"""

from repro.experiments import fig17


def test_fig17a_thread_sweep(figure_runner):
    result = figure_runner(fig17, "fig17")
    threads_rows = [row for row in result.rows if row[0] == "a:threads"]
    level_rows = [row for row in result.rows if row[0] == "b:levels"]
    assert len(threads_rows) >= 2 and len(level_rows) >= 2
    # (a) highest thread count at least as good as single-thread.
    assert threads_rows[-1][2] <= threads_rows[0][2] + 0.05
    # (b) the largest tree is no better than the smallest.
    assert level_rows[-1][2] >= level_rows[0][2] - 0.10

"""Pacing benchmark: what the fixed-temporal-distribution mode costs.

Drives the oblivious KV service with the *same* seeded open-loop
on/off (square-wave) workload, unpaced and then paced across a sweep
of ``pace.interval_ns``, and reports the two columns the trade-off is
made of:

* **added latency** — paced p50/p95 minus the unpaced baseline's: the
  price of queueing client requests behind a traffic-independent
  issue clock;
* **dummy bandwidth overhead** — pure-dummy slots as a fraction of all
  pace slots, and per completed request: tree accesses (bandwidth,
  energy) spent only to keep the timeline flat.

A slower cadence (larger ``interval_ns``) buys less dummy bandwidth at
more queueing latency, and vice versa — the sweep quantifies the curve
documented in docs/TEMPORAL.md. Results go to ``BENCH_pace.json`` at
the repository root.

Usage::

    python benchmarks/bench_pace.py            # full sweep, writes JSON
    python benchmarks/bench_pace.py --smoke    # quick CI sanity run
    python benchmarks/bench_pace.py --smoke --check-regression

``--check-regression`` compares this run's best paced throughput at
the gate interval against the committed baseline median (best-of-N vs
median, as in ``bench_perf.py``) and asserts pacing actually engaged
(pure-dummy slots were issued).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import (  # noqa: E402
    CacheConfig,
    PaceConfig,
    SchedulerConfig,
    SystemConfig,
    small_test_config,
)
from repro.serve.loadgen import run_loadgen  # noqa: E402
from repro.serve.service import OramService  # noqa: E402

LEVELS = 10
CLIENTS = 3
#: Mean open-loop arrival rate per client; the on/off shape sends at
#: twice this during ON windows and nothing during OFF windows, so a
#: paced service shows both queueing (ON) and dummy slots (OFF). The
#: aggregate mean stays below the slowest swept cadence — the regime
#: pacing is deployed in; past saturation every slot is real and the
#: latency column is just queueing theory.
RATE_PER_CLIENT = 40.0

#: The paced cadences swept by the full run; the gate interval leads
#: so the smoke run (which only runs the first entry) exercises it.
INTERVALS_NS = (3_000_000.0, 1_500_000.0, 6_000_000.0)
GATE_INTERVAL_NS = INTERVALS_NS[0]

#: Allowed throughput drop before the regression gate fails the run.
#: Wider than the simulator gate: the serve path includes real TCP and
#: the paced loop adds real sleeps.
REGRESSION_TOLERANCE = 0.50


def service_config(interval_ns: float | None, seed: int) -> SystemConfig:
    pace = (
        PaceConfig(mode="fixed", interval_ns=interval_ns)
        if interval_ns is not None
        else PaceConfig()
    )
    return SystemConfig(
        oram=small_test_config(LEVELS, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
        pace=pace,
        seed=seed,
    )


async def one_run(
    interval_ns: float | None, clients: int, requests: int, seed: int
) -> dict:
    service = OramService(service_config(interval_ns, seed))
    host, port = await service.start()
    try:
        result = await run_loadgen(
            host,
            port,
            clients=clients,
            requests=requests,
            num_blocks=service.engine.num_blocks,
            seed=seed,
            arrival="onoff",
            rate=RATE_PER_CLIENT,
        )
    finally:
        await service.stop()
    if result.lost or result.mismatches or result.failed:
        raise RuntimeError(
            f"benchmark run unhealthy (interval={interval_ns}): "
            f"lost={result.lost} failed={result.failed} "
            f"mismatches={result.mismatches}"
        )
    summary = result.summary()
    run = {
        "requests_per_s": summary["requests_per_s"],
        "p50_ms": summary["p50_ns"] / 1e6,
        "p95_ms": summary["p95_ns"] / 1e6,
        "accesses": service.engine.accesses,
        "completed": result.completed,
    }
    if service.pacer is not None:
        run["slots"] = service.pacer.slots
        run["dummy_slots"] = service.pacer.dummy_slots
    return run


def aggregate(runs: list[dict]) -> dict:
    med = lambda key: statistics.median(r[key] for r in runs)  # noqa: E731
    entry = {
        "median_requests_per_s": med("requests_per_s"),
        "best_requests_per_s": max(r["requests_per_s"] for r in runs),
        "median_p50_ms": med("p50_ms"),
        "median_p95_ms": med("p95_ms"),
    }
    if "slots" in runs[0]:
        slots = sum(r["slots"] for r in runs)
        dummies = sum(r["dummy_slots"] for r in runs)
        completed = sum(r["completed"] for r in runs)
        entry["dummy_fraction"] = dummies / slots if slots else 0.0
        entry["dummy_slots_per_request"] = (
            dummies / completed if completed else 0.0
        )
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="gate interval only, fewer requests, no JSON")
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument("--requests", type=int, default=40,
                        help="requests per client")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_pace.json")
    parser.add_argument(
        "--check-regression",
        type=pathlib.Path,
        nargs="?",
        const=REPO_ROOT / "BENCH_pace.json",
        default=None,
        metavar="BASELINE",
        help="fail (exit 1) if the best paced rate at the gate interval "
        f"drops more than {int(REGRESSION_TOLERANCE * 100)}%% below the "
        "committed baseline median, or if pacing issued no dummy slots",
    )
    args = parser.parse_args(argv)
    intervals = INTERVALS_NS
    if args.smoke:
        args.requests = 15
        intervals = INTERVALS_NS[:1]
        args.repeats = 3 if args.check_regression else 1

    report: dict = {
        "benchmark": f"pace off-vs-fixed sweep, L={LEVELS} 64 B blocks, "
        f"{args.clients} on/off open-loop clients x {args.requests} "
        f"requests at {RATE_PER_CLIENT:.0f}/s mean each",
        "repeats": args.repeats,
        "python": sys.version.split()[0],
    }

    baseline_runs = [
        asyncio.run(one_run(None, args.clients, args.requests, 61 + i))
        for i in range(args.repeats)
    ]
    baseline = aggregate(baseline_runs)
    report["baseline"] = baseline
    print(
        f"pace off : {baseline['median_requests_per_s']:8.1f} req/s, "
        f"p50 {baseline['median_p50_ms']:6.2f} ms, "
        f"p95 {baseline['median_p95_ms']:6.2f} ms"
    )

    report["intervals"] = []
    for interval_ns in intervals:
        runs = [
            asyncio.run(
                one_run(interval_ns, args.clients, args.requests, 61 + i)
            )
            for i in range(args.repeats)
        ]
        entry = {"interval_ns": interval_ns, **aggregate(runs)}
        entry["added_p50_ms"] = (
            entry["median_p50_ms"] - baseline["median_p50_ms"]
        )
        entry["added_p95_ms"] = (
            entry["median_p95_ms"] - baseline["median_p95_ms"]
        )
        report["intervals"].append(entry)
        print(
            f"{interval_ns / 1e6:6.1f} ms : "
            f"{entry['median_requests_per_s']:8.1f} req/s, "
            f"p95 {entry['median_p95_ms']:6.2f} ms "
            f"(+{entry['added_p95_ms']:.2f}), dummy fraction "
            f"{entry['dummy_fraction']:.2f} "
            f"({entry['dummy_slots_per_request']:.2f} dummies/request)"
        )

    status = 0
    if not args.smoke and status == 0:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check_regression is not None and status == 0:
        status = check_regression(args.check_regression, report)
    return status


def check_regression(baseline_path: pathlib.Path, report: dict) -> int:
    """CI gate: best paced rate at the gate interval vs the committed
    baseline median (best-of-N deliberately forgives shared-runner
    noise, as in ``bench_perf.py``), plus the engagement bar — a paced
    run that never issued a pure-dummy slot means the subsystem is
    silently disabled."""
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"ERROR: unreadable baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 1
    gate_entry = next(
        (
            entry
            for entry in report["intervals"]
            if entry["interval_ns"] == GATE_INTERVAL_NS
        ),
        None,
    )
    reference_entry = next(
        (
            entry
            for entry in baseline.get("intervals", [])
            if entry["interval_ns"] == GATE_INTERVAL_NS
        ),
        None,
    )
    if gate_entry is None or reference_entry is None:
        print(
            f"ERROR: no entry at the gate interval {GATE_INTERVAL_NS} in "
            "this run and/or the committed baseline",
            file=sys.stderr,
        )
        return 1
    if gate_entry["dummy_fraction"] <= 0.0:
        print(
            "ERROR: the paced run issued no pure-dummy slots — pacing "
            "did not engage",
            file=sys.stderr,
        )
        return 1
    reference = reference_entry["median_requests_per_s"]
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    measured = gate_entry["best_requests_per_s"]
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"regression gate: best paced {measured:.1f} req/s at "
        f"{GATE_INTERVAL_NS / 1e6:.1f} ms vs baseline median "
        f"{reference:.1f} req/s (floor {floor:.1f}): {verdict}"
    )
    if measured < floor:
        print(
            "ERROR: paced throughput regressed more than "
            f"{int(REGRESSION_TOLERANCE * 100)}% below the committed "
            "baseline; rerun to rule out noise or update BENCH_pace.json "
            "with a justified regeneration",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

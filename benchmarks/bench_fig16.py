"""Figure 16: in-order vs out-of-order cores.

Shape target: Fork Path's relative latency is better on the OoO
processor than on the in-order one (memory intensity drives the gain).
"""

from repro.experiments import fig16


def test_fig16_inorder_vs_ooo(figure_runner):
    result = figure_runner(fig16, "fig16")
    by_config = {row[0]: (row[1], row[2]) for row in result.rows}
    inorder, ooo = by_config["Merge+1M MAC"]
    assert ooo <= inorder + 0.05
    assert ooo < 1.0

"""Figure 18: Fork Path speedup vs number of DRAM channels.

Shape target: the speedup over traditional is largest with the fewest
channels (longer accesses -> deeper real backlog -> more merging).
"""

from repro.experiments import fig18


def test_fig18_channel_sweep(figure_runner):
    result = figure_runner(fig18, "fig18")
    speedups = {row[0]: row[1] for row in result.rows}
    # Fork Path wins at every channel count. The paper additionally
    # reports the win *shrinking* as channels are added; in our model
    # queueing amplification at saturation flattens that trend (see
    # EXPERIMENTS.md), so we assert a tight band rather than a slope.
    assert all(value > 1.5 for value in speedups.values())
    assert max(speedups.values()) - min(speedups.values()) < 0.15 * max(
        speedups.values()
    )

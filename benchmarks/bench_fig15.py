"""Figure 15: ORAM memory-system energy, normalised to traditional.

Shape target: Fork Path + 1 MB MAC cuts energy substantially
(paper: -38% vs traditional).
"""

from repro.experiments import fig15


def test_fig15_energy(figure_runner):
    result = figure_runner(fig15, "fig15")
    geo = dict(zip(result.columns[1:], result.rows[-1][1:]))
    assert geo["Merge+1M MAC"] < 0.9
    assert geo["Merge+1M MAC"] < geo["Merge only"]

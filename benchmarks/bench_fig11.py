"""Figure 11: total ORAM requests (dummies included), normalised.

Shape targets: ratios >= 1 (merging can only add dummy accesses);
overhead grows with the label queue size; low-intensity mixes worst.
"""

from repro.experiments import fig11


def test_fig11_normalized_request_count(figure_runner):
    result = figure_runner(fig11, "fig11")
    geomeans = result.rows[-1]
    columns = result.columns
    by_queue = dict(zip(columns[2:], geomeans[2:]))
    assert all(value >= 0.95 for value in by_queue.values())
    # Overhead at the largest queue exceeds the smallest.
    queues = sorted(by_queue, key=lambda name: int(name.split("=")[1]))
    assert by_queue[queues[-1]] >= by_queue[queues[0]] - 0.02

"""Figure 12: ORAM latency vs label queue size per mix.

Shape target: latency improves with queue size up to a sweet spot
(64 in the paper) and stops improving or degrades at 128.
"""

from repro.experiments import fig12


def test_fig12_latency_vs_queue(figure_runner):
    result = figure_runner(fig12, "fig12")
    geomeans = dict(zip(result.columns[2:], result.rows[-1][2:]))
    assert geomeans["queue=64"] < 1.0
    # 128 does not keep improving over 64 (the paper's crossover).
    assert geomeans["queue=128"] >= geomeans["queue=64"] - 0.05

"""Stash occupancy analysis (paper §2.3 and §3.6 claims).

Shape targets: occupancy tail negligible at 50% utilisation, exploding
only as the tree fills; Fork Path's persistent occupancy bounded by
the baseline's transient path-load envelope.
"""

from repro.experiments import stash_analysis


def test_stash_occupancy_claims(figure_runner):
    result = figure_runner(stash_analysis, "stash")
    util_rows = {row[1]: row for row in result.rows if row[0] == "A:util"}
    # Negligible at the paper's 50% operating point...
    assert util_rows[0.5][4] < 20
    # ...and growing sharply toward full utilisation.
    assert util_rows[1.0][4] > 10 * max(1.0, util_rows[0.5][4])
    config_rows = {row[1]: row for row in result.rows if row[0] == "B:config"}
    fork_max = config_rows["fork path q=64"][4]
    # Within the two-path-load envelope of §3.6, far below capacity.
    assert fork_max <= 2 * 4 * (15 + 1)

"""Oblivious KV service benchmark: request throughput and latency.

Starts an in-process :class:`repro.serve.OramService` on an ephemeral
port and drives it with the verifying load generator (``N`` concurrent
TCP clients, sequential request/response per client), once over the
plain in-memory backend and once over a fault-injecting backend, and
reports req/s plus p50/p95/p99 client-observed latency for both. Numbers go
to ``BENCH_serve.json`` at the repository root.

Methodology
-----------
* The loadgen verifies every response against a per-client model, so a
  benchmark run is also a correctness run: any lost, failed or
  incoherent response fails the benchmark (exit 1).
* The faulty pass injects transient errors at the storage server
  (``--error-rate``, default 3%), exercising the retry path under load;
  its throughput is expected to trail the memory pass.
* The median over ``--repeats`` runs is reported per backend; each run
  uses a fresh service and tree, so runs are independent.

Usage::

    python benchmarks/bench_serve.py            # full run, writes JSON
    python benchmarks/bench_serve.py --smoke    # quick CI sanity run
    python benchmarks/bench_serve.py --smoke --trace serve-trace.jsonl

``--trace`` attaches the observability layer to the first memory-backend
run (events written as JSONL, validatable with
``python -m repro.obs.schema``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import (  # noqa: E402
    CacheConfig,
    SchedulerConfig,
    ServiceConfig,
    SystemConfig,
    small_test_config,
)
from repro.obs import tracer_for_jsonl  # noqa: E402
from repro.serve.loadgen import run_loadgen  # noqa: E402
from repro.serve.service import OramService  # noqa: E402


def service_config(backend: str, error_rate: float, seed: int) -> SystemConfig:
    return SystemConfig(
        oram=small_test_config(10, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=16),
        cache=CacheConfig(policy="none"),
        service=ServiceConfig(
            backend=backend,
            retry_base_ns=100_000.0,
            fault_error_rate=error_rate if backend == "faulty" else 0.0,
            fault_seed=seed,
        ),
        seed=seed,
    )


async def one_run(
    backend: str, clients: int, requests: int, error_rate: float, seed: int,
    trace_path=None,
) -> dict:
    tracer = tracer_for_jsonl(str(trace_path)) if trace_path else None
    service = OramService(
        service_config(backend, error_rate, seed), tracer=tracer
    )
    host, port = await service.start()
    try:
        result = await run_loadgen(
            host,
            port,
            clients=clients,
            requests=requests,
            num_blocks=service.engine.num_blocks,
            seed=seed,
        )
    finally:
        await service.stop()
        if tracer is not None:
            tracer.close()
    if result.lost or result.mismatches or result.failed:
        raise RuntimeError(
            f"benchmark run unhealthy: lost={result.lost} "
            f"failed={result.failed} mismatches={result.mismatches}"
        )
    summary = result.summary()
    summary["accesses"] = float(service.engine.accesses)
    summary["real_accesses"] = float(service.engine.real_accesses)
    summary["backend_retries"] = float(service.engine.store.retries)
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick sanity run (no JSON output)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=150,
                        help="requests per client")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--error-rate", type=float, default=0.03)
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_serve.json")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="JSONL event trace of the first memory run")
    args = parser.parse_args(argv)
    if args.smoke:
        args.clients, args.requests, args.repeats = 4, 30, 1

    report: dict = {
        "benchmark": f"serve loadgen, {args.clients} clients x "
        f"{args.requests} requests, L=10 queue=16",
        "clients": args.clients,
        "requests_per_client": args.requests,
        "repeats": args.repeats,
        "python": sys.version.split()[0],
    }
    for backend in ("memory", "faulty"):
        runs = []
        for repeat in range(args.repeats):
            trace = args.trace if backend == "memory" and repeat == 0 else None
            runs.append(
                asyncio.run(
                    one_run(
                        backend,
                        args.clients,
                        args.requests,
                        args.error_rate,
                        seed=41 + repeat,
                        trace_path=trace,
                    )
                )
            )
        med = lambda key: statistics.median(run[key] for run in runs)  # noqa: E731
        report[backend] = {
            "median_requests_per_s": med("requests_per_s"),
            "median_p50_ms": med("p50_ns") / 1e6,
            "median_p95_ms": med("p95_ns") / 1e6,
            "median_p99_ms": med("p99_ns") / 1e6,
            "completed": runs[0]["completed"],
            "accesses": runs[0]["accesses"],
            "real_accesses": runs[0]["real_accesses"],
            "backend_retries": med("backend_retries"),
        }
        print(
            f"{backend:7s}: {report[backend]['median_requests_per_s']:8.1f} req/s, "
            f"p50 {report[backend]['median_p50_ms']:7.2f} ms, "
            f"p95 {report[backend]['median_p95_ms']:7.2f} ms, "
            f"p99 {report[backend]['median_p99_ms']:7.2f} ms "
            f"({report[backend]['backend_retries']:.0f} retries)"
        )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

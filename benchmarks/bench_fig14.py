"""Figure 14: full-system slowdown versus an insecure processor.

Shape targets: traditional Path ORAM costs a multi-x slowdown; Fork
Path with a 1 MB MAC roughly halves execution time versus traditional
(paper: -58%).
"""

from repro.experiments import fig14


def test_fig14_slowdown(figure_runner):
    result = figure_runner(fig14, "fig14")
    geo = dict(zip(result.columns[1:], result.rows[-1][1:]))
    assert geo["Traditional ORAM"] > 2.0
    reduction = 1 - geo["Merge+1M MAC"] / geo["Traditional ORAM"]
    assert reduction > 0.30, f"only {reduction:.0%} vs paper's 58%"

"""Sharded service benchmark: aggregate throughput vs shard count.

Starts an in-process :class:`repro.cluster.ClusterService` on an
ephemeral port for each shard count in ``--shard-counts`` (default
1, 2, 4, 8) and drives it with the verifying load generator. Numbers
go to ``BENCH_cluster.json`` at the repository root.

Where the scaling comes from: the cluster stripes ``N`` logical blocks
over ``K`` shards, so each shard's tree holds only ``ceil(N / K)``
blocks and is about ``log2 K`` levels shallower than the monolithic
one. Every access therefore reads and writes fewer buckets — the
per-request work shrinks with the shard count even on a single thread,
and the parallel dispatch policy additionally overlaps shard turns
within a round. Throughput must rise monotonically from 1 to 4 shards
on the in-memory backend (the acceptance criterion; checked here).

``--workers process`` runs each shard engine in its own supervised
subprocess (``cluster.workers = "process"``): the parallel dispatch
policy then overlaps turns across *cores*, not just coroutines, so
scaling continues past the single-interpreter knee — with process
workers, 8 shards must additionally beat 4 (also checked here).

Methodology
-----------
* The loadgen verifies every response against a per-client model, so a
  benchmark run is also a correctness run: any lost, failed or
  incoherent response fails the benchmark (exit 1).
* All shard counts share one address-space size (the 1-shard tree's
  capacity), so per-request work differs only through sharding.
* The median over ``--repeats`` runs is reported per shard count;
  each run uses fresh shards and trees, so runs are independent.

Usage::

    python benchmarks/bench_cluster.py            # full run, writes JSON
    python benchmarks/bench_cluster.py --smoke    # quick CI sanity run
    python benchmarks/bench_cluster.py --smoke --trace cluster-trace.jsonl

``--trace`` attaches the observability layer to the first run of the
largest shard count (shard-tagged events written as JSONL, validatable
with ``python -m repro.obs.schema``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import (  # noqa: E402
    CacheConfig,
    ClusterConfig,
    SchedulerConfig,
    ServiceConfig,
    SystemConfig,
    small_test_config,
)
from repro.cluster import ClusterService  # noqa: E402
from repro.obs import tracer_for_jsonl  # noqa: E402
from repro.serve.loadgen import run_loadgen  # noqa: E402

#: Tree depth of the monolithic (1-shard) baseline.
BASE_LEVELS = 10
#: Logical address-space size shared by every shard count. Kept below
#: the base tree's capacity so per-shard trees can actually shrink —
#: striping a maximally-full tree leaves every shard one block past
#: the next-shallower tree's capacity.
NUM_BLOCKS = 2000


def cluster_config(
    shards: int, dispatch: str, seed: int, workers: str,
    base_levels: int = BASE_LEVELS, num_blocks: int = NUM_BLOCKS,
) -> SystemConfig:
    oram = small_test_config(base_levels, block_bytes=64, num_blocks=num_blocks)
    return SystemConfig(
        oram=oram,
        scheduler=SchedulerConfig(label_queue_size=16),
        cache=CacheConfig(policy="none"),
        service=ServiceConfig(retry_base_ns=100_000.0),
        cluster=ClusterConfig(shards=shards, dispatch=dispatch, workers=workers),
        seed=seed,
    )


async def one_run(
    shards: int, dispatch: str, clients: int, requests: int, seed: int,
    trace_path=None, workers: str = "inline",
    base_levels: int = BASE_LEVELS, num_blocks: int = NUM_BLOCKS,
) -> dict:
    tracer = tracer_for_jsonl(str(trace_path)) if trace_path else None
    service = ClusterService(
        cluster_config(shards, dispatch, seed, workers, base_levels, num_blocks),
        tracer=tracer,
    )
    host, port = await service.start()
    try:
        result = await run_loadgen(
            host,
            port,
            clients=clients,
            requests=requests,
            num_blocks=service.num_blocks,
            seed=seed,
        )
        if workers == "process":
            # Engines live in the worker processes: health-check over
            # the control plane (before stop() takes the fleet down).
            stats = await service.router.stats()
            counts = [int(entry["accesses"]) for entry in stats]
            shard_levels = float(stats[0]["levels"])
        else:
            engines = service.router.workers
            counts = [worker.engine.accesses for worker in engines]
            shard_levels = float(engines[0].config.oram.levels)
    finally:
        await service.stop()
        if tracer is not None:
            tracer.close()
    if result.lost or result.mismatches or result.failed:
        raise RuntimeError(
            f"benchmark run unhealthy: lost={result.lost} "
            f"failed={result.failed} mismatches={result.mismatches}"
        )
    if max(counts) - min(counts) > 1:
        raise RuntimeError(
            f"benchmark run unhealthy: shard access counts {counts} "
            f"diverge — the fixed dispatch schedule was not kept"
        )
    summary = result.summary()
    summary["rounds"] = float(service.router.rounds)
    summary["accesses"] = float(sum(counts))
    summary["shard_levels"] = shard_levels
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick sanity run (no JSON output)")
    parser.add_argument("--shard-counts", type=int, nargs="+",
                        default=None, help="default 1 2 4 8 (1 2 in smoke)")
    parser.add_argument("--dispatch", choices=["rr", "parallel"],
                        default="parallel")
    parser.add_argument("--workers", choices=["inline", "process"],
                        default="inline",
                        help="inline: K engines in this process; process: "
                        "one supervised worker subprocess per shard")
    parser.add_argument("--base-levels", type=int, default=BASE_LEVELS,
                        help="tree depth of the 1-shard baseline")
    parser.add_argument("--num-blocks", type=int, default=NUM_BLOCKS,
                        help="logical address-space size (all shard counts)")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=150,
                        help="requests per client")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_cluster.json")
    parser.add_argument("--trace", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="JSONL event trace of the first max-shard run")
    args = parser.parse_args(argv)
    if args.smoke:
        args.clients, args.requests, args.repeats = 4, 30, 1
    if args.shard_counts is None:
        args.shard_counts = [1, 2] if args.smoke else [1, 2, 4, 8]

    report: dict = {
        "benchmark": f"cluster loadgen, {args.clients} clients x "
        f"{args.requests} requests, base L={args.base_levels} queue=16, "
        f"dispatch={args.dispatch}, workers={args.workers}",
        "dispatch": args.dispatch,
        "workers": args.workers,
        "base_levels": args.base_levels,
        "num_blocks": args.num_blocks,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "repeats": args.repeats,
        "python": sys.version.split()[0],
        "shards": {},
    }
    throughputs: dict = {}
    for shards in args.shard_counts:
        runs = []
        for repeat in range(args.repeats):
            trace = (
                args.trace
                if shards == max(args.shard_counts) and repeat == 0
                else None
            )
            runs.append(
                asyncio.run(
                    one_run(
                        shards,
                        args.dispatch,
                        args.clients,
                        args.requests,
                        seed=41 + repeat,
                        trace_path=trace,
                        workers=args.workers,
                        base_levels=args.base_levels,
                        num_blocks=args.num_blocks,
                    )
                )
            )
        med = lambda key: statistics.median(run[key] for run in runs)  # noqa: E731
        entry = {
            "median_requests_per_s": med("requests_per_s"),
            "median_p50_ms": med("p50_ns") / 1e6,
            "median_p95_ms": med("p95_ns") / 1e6,
            "median_p99_ms": med("p99_ns") / 1e6,
            "completed": runs[0]["completed"],
            "rounds": runs[0]["rounds"],
            "accesses": runs[0]["accesses"],
            "shard_levels": runs[0]["shard_levels"],
        }
        report["shards"][str(shards)] = entry
        throughputs[shards] = entry["median_requests_per_s"]
        print(
            f"{shards:2d} shard(s) (L={entry['shard_levels']:.0f}): "
            f"{entry['median_requests_per_s']:8.1f} req/s, "
            f"p50 {entry['median_p50_ms']:7.2f} ms, "
            f"p95 {entry['median_p95_ms']:7.2f} ms, "
            f"p99 {entry['median_p99_ms']:7.2f} ms"
        )
    # Acceptance criterion: aggregate throughput must rise monotonically
    # from 1 to 4 shards (checked over whichever of 1/2/4 were run).
    # Process workers additionally must keep scaling past the GIL knee:
    # 8 shards on 8 cores has to beat 4.
    counts = (1, 2, 4, 8) if args.workers == "process" else (1, 2, 4)
    checked = [k for k in counts if k in throughputs]
    for low, high in zip(checked, checked[1:]):
        if throughputs[high] <= throughputs[low]:
            print(
                f"FAIL: {high} shards ({throughputs[high]:.1f} req/s) not "
                f"faster than {low} ({throughputs[low]:.1f} req/s)",
                file=sys.stderr,
            )
            return 1
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 19: multi-threaded (PARSEC stand-in) ORAM latency.

Shape target: Fork Path reduces ORAM latency for the 4-thread runs,
most for the memory-intensive benchmarks (canneal, streamcluster).
"""

from repro.experiments import fig19


def test_fig19_parsec(figure_runner):
    result = figure_runner(fig19, "fig19")
    ratios = {row[0]: row[2] for row in result.rows}
    assert ratios["geomean"] < 1.0
    assert ratios["canneal"] < 1.0
    assert ratios["streamcluster"] < 1.0

"""Figure 10: average ORAM path length & DRAM latency vs queue size.

Shape targets: traditional pinned at L+1; merging path length falls
~linearly in log2(queue size); normalised DRAM latency tracks it.
"""

from repro.experiments import fig10


def test_fig10_path_length_vs_queue(figure_runner):
    result = figure_runner(fig10, "fig10")
    paths = result.series("avg_path_buckets")
    # Baseline first, then queue sizes ascending: monotone decrease.
    assert paths[1] < paths[0]
    assert paths[-1] < paths[1]
    # Merging at any queue size beats traditional DRAM latency.
    assert all(ratio < 1.0 for ratio in result.series("norm_dram_latency")[1:])

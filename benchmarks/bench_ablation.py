"""Ablations of Fork Path design choices (DESIGN.md §4).

Each knob is toggled in isolation on a saturating workload so its
individual contribution is visible:

* scheduling off (merging with a FIFO queue);
* dummy-label replacing off;
* MAC allocation: full per-level residency vs the literal Equation (1)
  geometric allocation;
* DRAM layout: sub-tree vs naive heap order;
* dummy refresh (the instructive negative result: re-drawing queued
  dummy labels floods the schedule with dummy wins).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import fork_path_scheduler
from repro.analysis.report import format_table
from repro.config import CacheConfig, DramConfig, SchedulerConfig
from repro.experiments.common import (
    base_config,
    run_mix,
    run_saturating_trace,
    scale_from_env,
)

SCALE = scale_from_env()
HG_MIX = "Mix3"


def _report(label: str, rows):
    text = format_table(label, ["variant", "value"], rows)
    print()
    print(text)


def test_scheduling_contribution(benchmark):
    """Merging+scheduling must beat merging alone on path length."""

    def run():
        fork = run_saturating_trace(
            base_config(SCALE, scheduler=fork_path_scheduler(64)), SCALE
        )
        fifo = run_saturating_trace(
            base_config(
                SCALE,
                scheduler=SchedulerConfig(
                    label_queue_size=64, enable_scheduling=False
                ),
            ),
            SCALE,
        )
        return fork.avg_path_buckets, fifo.avg_path_buckets

    scheduled, fifo = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(
        "Ablation: request scheduling",
        [["merge+schedule", scheduled], ["merge only (FIFO)", fifo]],
    )
    assert scheduled < fifo - 0.5


def test_dummy_replacing_contribution(benchmark):
    """Replacing takes over committed-dummy slots: fewer dummy accesses."""

    def run():
        with_replacing = run_mix(
            base_config(SCALE, scheduler=fork_path_scheduler(64)), HG_MIX, SCALE
        )
        without = run_mix(
            base_config(
                SCALE,
                scheduler=SchedulerConfig(
                    label_queue_size=64, enable_dummy_replacing=False
                ),
            ),
            HG_MIX,
            SCALE,
        )
        return (
            with_replacing.metrics.dummy_fraction,
            without.metrics.dummy_fraction,
            with_replacing.metrics.avg_latency_ns,
            without.metrics.avg_latency_ns,
        )

    with_frac, without_frac, with_lat, without_lat = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _report(
        "Ablation: dummy-label replacing (dummy fraction / latency ns)",
        [
            ["replacing on", f"{with_frac:.3f} / {with_lat:.0f}"],
            ["replacing off", f"{without_frac:.3f} / {without_lat:.0f}"],
        ],
    )
    assert with_frac <= without_frac + 0.01
    assert with_lat <= without_lat * 1.05


def test_mac_allocation_full_vs_geometric(benchmark):
    """The literal Equation (1) allocation measures near-zero hits."""

    def run():
        full = run_mix(
            base_config(
                SCALE,
                scheduler=fork_path_scheduler(64),
                cache=CacheConfig(policy="mac", capacity_bytes=256 * 1024),
            ),
            HG_MIX,
            SCALE,
        )
        geometric = run_mix(
            base_config(
                SCALE,
                scheduler=fork_path_scheduler(64),
                cache=CacheConfig(
                    policy="mac",
                    capacity_bytes=256 * 1024,
                    mac_allocation="geometric",
                ),
            ),
            HG_MIX,
            SCALE,
        )
        return full.metrics.cache_read_hits, geometric.metrics.cache_read_hits

    full_hits, geometric_hits = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(
        "Ablation: MAC allocation (cache read hits)",
        [["full per-level", full_hits], ["geometric (Eq. 1 literal)", geometric_hits]],
    )
    assert full_hits > geometric_hits


def test_subtree_layout_contribution(benchmark):
    """Ren et al.'s sub-tree layout must raise the row-hit rate."""

    def run():
        import random

        from repro.core.controller import ForkPathController
        from repro.workloads.synthetic import uniform_trace
        from repro.workloads.trace import TraceSource

        rates = {}
        for layout in ("subtree", "flat"):
            config = base_config(
                SCALE,
                scheduler=fork_path_scheduler(64),
                dram=DramConfig(layout=layout),
            )
            trace = uniform_trace(
                SCALE.trace_requests, 4096, 50.0, random.Random(SCALE.seed)
            )
            controller = ForkPathController(
                config, TraceSource(trace), rng=random.Random(1)
            )
            controller.run()
            rates[layout] = controller.dram.stats.row_hit_rate
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(
        "Ablation: DRAM layout (row-buffer hit rate)",
        [[name, f"{rate:.3f}"] for name, rate in rates.items()],
    )
    assert rates["subtree"] > rates["flat"] + 0.1


def test_dummy_refresh_negative_result(benchmark):
    """Re-drawing queued dummy labels floods the schedule with dummies.

    Measured with dummy replacing off so takeovers cannot mask the
    selection-level effect (fresh dummy pools out-compete the
    partially-depleted real entries on overlap degree).
    """

    def run():
        default = run_mix(
            base_config(
                SCALE,
                scheduler=SchedulerConfig(
                    label_queue_size=64, enable_dummy_replacing=False
                ),
            ),
            HG_MIX,
            SCALE,
        )
        refreshed = run_mix(
            base_config(
                SCALE,
                scheduler=SchedulerConfig(
                    label_queue_size=64,
                    enable_dummy_replacing=False,
                    refresh_dummies=True,
                ),
            ),
            HG_MIX,
            SCALE,
        )
        return default.metrics.dummy_fraction, refreshed.metrics.dummy_fraction

    default_frac, refreshed_frac = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(
        "Ablation: dummy label refresh (dummy fraction)",
        [["lingering (paper)", f"{default_frac:.3f}"],
         ["refreshed", f"{refreshed_frac:.3f}"]],
    )
    assert refreshed_frac > default_frac


def test_aging_threshold_sweep(benchmark):
    """Tail-latency guard: tighter aging trades path length for p99."""

    def run():
        rows = []
        for threshold in (8, 64, 1024):
            config = base_config(
                SCALE,
                scheduler=SchedulerConfig(
                    label_queue_size=64, aging_threshold=threshold
                ),
            )
            metrics = run_saturating_trace(config, SCALE)
            rows.append(
                (
                    threshold,
                    metrics.avg_path_buckets,
                    metrics.latency_percentile(0.99),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(
        "Ablation: aging threshold (path buckets / p99 ns)",
        [[t, f"{path:.2f} / {p99:.0f}"] for t, path, p99 in rows],
    )
    # Loose guard (1024) must give the shortest paths.
    assert rows[-1][1] <= rows[0][1] + 0.05


def test_super_block_prefetch(benchmark):
    """Static super blocks (Ren et al.): spatial locality turns into
    group-coalesced completions; random traffic is unharmed."""

    def run():
        import random

        from repro.config import OramConfig, SystemConfig
        from repro.core.controller import ForkPathController
        from repro.workloads.trace import TraceSource, make_trace

        results = {}
        for log2 in (0, 2, 3):
            config = SystemConfig(
                oram=OramConfig(
                    levels=SCALE.levels,
                    # Super blocks constrain placement (a whole group
                    # shares one path), so they need a larger stash —
                    # Ren et al. provision for this too.
                    stash_capacity=SCALE.stash_capacity + 128 * (1 << log2),
                    super_block_log2=log2,
                ),
                scheduler=fork_path_scheduler(64),
                cache=CacheConfig(policy="none"),
            )
            writes = [(60.0 * (i + 1), i, True) for i in range(1024)]
            base_t = 60.0 * 1025
            reads = [(base_t + 60.0 * i, i, False) for i in range(1024)]
            controller = ForkPathController(
                config,
                TraceSource(make_trace(writes + reads)),
                rng=random.Random(3),
            )
            metrics = controller.run()
            results[log2] = metrics.total_accesses
        return results

    accesses = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(
        "Ablation: static super blocks (total path accesses, sequential scan)",
        [[f"2^{log2} blocks/group", count] for log2, count in accesses.items()],
    )
    assert accesses[3] < accesses[0]
    assert accesses[2] < accesses[0]

"""Simulator-core throughput benchmark (accesses per second).

Runs the Figure 10 small-scale configuration — an open-loop saturating
trace through the fork-path controller with a 64-entry label queue —
and reports wall time and ORAM accesses per second, writing the numbers
to ``BENCH_perf.json`` at the repository root.

Methodology
-----------
* The adversary trace recorder is disabled and the garbage collector is
  paused during the timed section: both only add noise proportional to
  run length and change nothing the simulator models.
* Each repeat runs a 500-request warmup first (memoised path/locate
  caches, dict growth) and times the remaining steady-state requests.
* The median over ``--repeats`` independent runs is reported; each run
  rebuilds the controller from the same seeds, so the simulated
  behaviour is identical across repeats and across code versions.

Usage::

    python benchmarks/bench_perf.py            # full run, writes JSON
    python benchmarks/bench_perf.py --smoke    # quick CI sanity run
    python benchmarks/bench_perf.py --smoke --trace run.jsonl
                                               # + JSONL event trace

``--trace`` attaches the observability layer (events written as JSONL,
validatable with ``python -m repro.obs.schema``). Tracing changes
nothing the simulator models — the behavioural fingerprint must stay
identical — but it does cost wall time, so traced rates are not
comparable with the untraced baseline in ``BENCH_perf.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import pathlib
import random
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import Simulation, fork_path_scheduler  # noqa: E402
from repro.experiments.common import SMALL, base_config  # noqa: E402
from repro.obs import tracer_for_jsonl  # noqa: E402
from repro.workloads.synthetic import uniform_trace  # noqa: E402

WARMUP_REQUESTS = 500


def one_run(requests: int, queue_size: int, trace_path=None) -> dict:
    """One timed simulation; returns rate and checksum-style counters."""
    scale = dataclasses.replace(SMALL, trace_requests=requests)
    config = base_config(scale, scheduler=fork_path_scheduler(queue_size))
    rng = random.Random(scale.seed)
    footprint = min(config.oram.num_blocks, 1 << 20)
    trace = uniform_trace(
        scale.trace_requests, footprint, 50.0, rng, write_fraction=0.3
    )
    tracer = tracer_for_jsonl(trace_path) if trace_path else None
    # Simulation.controller rather than Simulation.run: the warmup /
    # timed split needs two run() calls on the same controller.
    controller = Simulation(config).controller(
        trace, tracer=tracer, rng=random.Random(scale.seed + 1)
    )
    controller.memory.trace.enabled = False
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        controller.run(max_requests=min(WARMUP_REQUESTS, requests // 2))
        warm_accesses = controller.metrics.total_accesses
        start = time.perf_counter()
        metrics = controller.run()
        wall_s = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
        if tracer is not None:
            tracer.close()
    timed_accesses = metrics.total_accesses - warm_accesses
    summary = metrics.summary()
    return {
        "wall_s": wall_s,
        "timed_accesses": timed_accesses,
        "accesses_per_s": timed_accesses / wall_s,
        # Behavioural fingerprint: must not move when only speed changes.
        "avg_latency_ns": summary["avg_latency_ns"],
        "avg_path_buckets": summary["avg_path_buckets"],
        "total_accesses": metrics.total_accesses,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick sanity run (fewer requests/repeats, no JSON output)",
    )
    parser.add_argument("--requests", type=int, default=5500)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--queue", type=int, default=64)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_perf.json",
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write a JSONL event trace (first repeat only; disables the "
        "untraced-throughput comparison)",
    )
    parser.add_argument(
        "--check-regression",
        type=pathlib.Path,
        nargs="?",
        const=REPO_ROOT / "BENCH_perf.json",
        default=None,
        metavar="BASELINE",
        help="fail (exit 1) if this run's best rate drops more than "
        f"{int(REGRESSION_TOLERANCE * 100)}%% below the committed "
        "baseline's median (default baseline: repo BENCH_perf.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = 1200
        # The regression gate compares best-of-N, so give it a few
        # repeats to see past scheduler noise on shared CI runners.
        args.repeats = 3 if args.check_regression else 1

    runs = [
        one_run(args.requests, args.queue, args.trace if i == 0 else None)
        for i in range(args.repeats)
    ]
    rates = [run["accesses_per_s"] for run in runs]
    walls = [run["wall_s"] for run in runs]
    fingerprints = {
        (run["avg_latency_ns"], run["avg_path_buckets"]) for run in runs
    }
    if len(fingerprints) != 1:
        print("ERROR: repeats disagree on simulated behaviour", file=sys.stderr)
        return 1

    report = {
        "benchmark": "fig10-small saturating trace, fork-path queue=%d"
        % args.queue,
        "requests": args.requests,
        "warmup_requests": min(WARMUP_REQUESTS, args.requests // 2),
        "repeats": args.repeats,
        "median_accesses_per_s": statistics.median(rates),
        "best_accesses_per_s": max(rates),
        "median_wall_s": statistics.median(walls),
        "per_run_accesses_per_s": rates,
        "per_run_wall_s": walls,
        "avg_latency_ns": runs[0]["avg_latency_ns"],
        "avg_path_buckets": runs[0]["avg_path_buckets"],
        "python": sys.version.split()[0],
    }
    print(
        f"{report['benchmark']}: "
        f"median {report['median_accesses_per_s']:.1f} acc/s, "
        f"median wall {report['median_wall_s']:.3f}s "
        f"({args.repeats} repeats of {args.requests} requests)"
    )
    if not args.smoke:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check_regression is not None:
        return check_regression(args.check_regression, report)
    return 0


#: Allowed throughput drop before the regression gate fails the run.
REGRESSION_TOLERANCE = 0.30


def check_regression(baseline_path: pathlib.Path, report: dict) -> int:
    """CI gate: best rate of this run vs the committed baseline median.

    Best-of-N (not median) is deliberately forgiving: shared CI runners
    routinely slow individual repeats by 20-30%, but the *best* repeat
    tracks the code's actual speed closely. A >30% drop of even the
    best repeat means a real regression, not noise.
    """
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"ERROR: unreadable baseline {baseline_path}: {exc}", file=sys.stderr)
        return 1
    reference = baseline["median_accesses_per_s"]
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    measured = report["best_accesses_per_s"]
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"regression gate: best {measured:.1f} acc/s vs baseline median "
        f"{reference:.1f} acc/s (floor {floor:.1f}): {verdict}"
    )
    if measured < floor:
        print(
            "ERROR: throughput regressed more than "
            f"{int(REGRESSION_TOLERANCE * 100)}% below the committed "
            "baseline; rerun to rule out noise or update BENCH_perf.json "
            "with a justified regeneration",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

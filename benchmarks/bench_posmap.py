"""Recursive position-map benchmark: bounded client state, real service.

Starts the oblivious KV service twice over the same 2^17-leaf tree —
once with the flat O(N) position map, once with ``posmap.mode=
recursive`` — drives each with the verifying load generator, and
reports request throughput plus the two numbers the subsystem exists
for:

* ``resident_state_bytes`` — the client-side state a checkpoint must
  carry (position map + stashes + engine counters), measured by
  tracemalloc around a deep copy of ``engine.capture_state()``;
* ``address_space_ratio`` — addressable bytes divided by resident
  bytes. The acceptance bar for the recursive mode is **>= 100x**
  (the served address space is two orders of magnitude larger than
  everything the client keeps resident), enforced on every run.

Flat-mode numbers are taken twice: once after the load (the map is
lazy, so a short run leaves it almost empty) and once after priming a
lookup of every address — the steady state of a long-lived service,
and the growth the recursive mode removes. Results go to
``BENCH_posmap.json`` at the repository root.

Usage::

    python benchmarks/bench_posmap.py            # full run, writes JSON
    python benchmarks/bench_posmap.py --smoke    # quick CI sanity run
    python benchmarks/bench_posmap.py --smoke --check-regression

``--check-regression`` compares this run's best recursive throughput
against the committed baseline median (best-of-N vs median, as in
``bench_perf.py``) and always re-asserts the 100x ratio bar.
"""

from __future__ import annotations

import argparse
import asyncio
import copy
import json
import pathlib
import pickle
import statistics
import sys
import tracemalloc

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.config import (  # noqa: E402
    CacheConfig,
    PosmapConfig,
    SchedulerConfig,
    ServiceConfig,
    SystemConfig,
    small_test_config,
)
from repro.posmap import plan_layout  # noqa: E402
from repro.oram.tree import TreeGeometry  # noqa: E402
from repro.serve.loadgen import run_loadgen  # noqa: E402
from repro.serve.service import OramService  # noqa: E402

LEVELS = 15  # 2^15 leaves -> 131070 addressable 64 B blocks (8 MiB)
BUDGET_BYTES = 2048  # forces a depth-2 posmap hierarchy
RATIO_FLOOR = 100.0  # acceptance bar: address space >= 100x resident

#: Allowed throughput drop before the regression gate fails the run.
#: Wider than the simulator gate: the serve path includes real TCP.
REGRESSION_TOLERANCE = 0.50


def service_config(mode: str, seed: int) -> SystemConfig:
    return SystemConfig(
        oram=small_test_config(LEVELS, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
        posmap=PosmapConfig(mode=mode, client_budget_bytes=BUDGET_BYTES),
        service=ServiceConfig(backend="memory"),
        seed=seed,
    )


def resident_state_bytes(engine) -> int:
    """Bytes of the client-resident engine state (tracemalloc around a
    deep copy of the checkpointable state — position map included)."""
    tracemalloc.start()
    snapshot = copy.deepcopy(engine.capture_state())
    resident, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del snapshot
    return resident


def checkpoint_bytes(engine) -> int:
    """Plaintext size of a state checkpoint (sealing adds a constant)."""
    state = engine.capture_state()
    return len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))


async def one_run(mode: str, clients: int, requests: int, seed: int) -> dict:
    service = OramService(service_config(mode, seed))
    host, port = await service.start()
    try:
        result = await run_loadgen(
            host,
            port,
            clients=clients,
            requests=requests,
            num_blocks=service.engine.num_blocks,
            seed=seed,
        )
    finally:
        await service.stop()
    if result.lost or result.mismatches or result.failed:
        raise RuntimeError(
            f"benchmark run unhealthy ({mode}): lost={result.lost} "
            f"failed={result.failed} mismatches={result.mismatches}"
        )
    engine = service.engine
    summary = result.summary()
    run = {
        "requests_per_s": summary["requests_per_s"],
        "p95_ms": summary["p95_ns"] / 1e6,
        "accesses": engine.accesses,
        "resident_state_bytes": resident_state_bytes(engine),
        "checkpoint_bytes": checkpoint_bytes(engine),
    }
    if mode == "flat":
        # Steady state of a long-lived flat service: every address has
        # been looked up once, so the map holds all N labels.
        for addr in range(engine.num_blocks):
            engine.posmap.lookup(addr)
        run["primed_resident_state_bytes"] = resident_state_bytes(engine)
        run["primed_checkpoint_bytes"] = checkpoint_bytes(engine)
    return run


def describe_layout() -> dict:
    config = service_config("recursive", seed=0)
    geometry = TreeGeometry(config.oram.levels)
    layout = plan_layout(config.oram, config.posmap, geometry)
    return {
        "depth": layout.depth,
        "labels_per_block": layout.labels_per_block,
        "root_entries": layout.root_entries,
        "level_entries": [level.entries for level in layout.levels],
        "posmap_tree_nodes": layout.total_nodes - geometry.num_nodes,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick sanity run (no JSON output)")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests", type=int, default=40,
                        help="requests per client")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_posmap.json")
    parser.add_argument(
        "--check-regression",
        type=pathlib.Path,
        nargs="?",
        const=REPO_ROOT / "BENCH_posmap.json",
        default=None,
        metavar="BASELINE",
        help="fail (exit 1) if the best recursive-mode rate drops more "
        f"than {int(REGRESSION_TOLERANCE * 100)}%% below the committed "
        "baseline median, or if the 100x state ratio bar is missed",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.clients, args.requests = 2, 12
        args.repeats = 3 if args.check_regression else 1

    address_space_bytes = None
    report: dict = {
        "benchmark": f"posmap flat-vs-recursive, L={LEVELS} 64 B blocks, "
        f"budget {BUDGET_BYTES} B, {args.clients} clients x "
        f"{args.requests} requests",
        "layout": describe_layout(),
        "repeats": args.repeats,
        "python": sys.version.split()[0],
    }
    num_blocks = small_test_config(LEVELS, block_bytes=64).num_blocks
    address_space_bytes = num_blocks * 64
    report["address_space_bytes"] = address_space_bytes

    for mode in ("flat", "recursive"):
        runs = [
            asyncio.run(one_run(mode, args.clients, args.requests, 41 + i))
            for i in range(args.repeats)
        ]
        med = lambda key: statistics.median(r[key] for r in runs)  # noqa: E731
        entry = {
            "median_requests_per_s": med("requests_per_s"),
            "best_requests_per_s": max(r["requests_per_s"] for r in runs),
            "median_p95_ms": med("p95_ms"),
            "resident_state_bytes": max(r["resident_state_bytes"] for r in runs),
            "checkpoint_bytes": max(r["checkpoint_bytes"] for r in runs),
            "accesses": runs[0]["accesses"],
        }
        if mode == "flat":
            entry["primed_resident_state_bytes"] = max(
                r["primed_resident_state_bytes"] for r in runs
            )
            entry["primed_checkpoint_bytes"] = max(
                r["primed_checkpoint_bytes"] for r in runs
            )
        entry["address_space_ratio"] = (
            address_space_bytes / entry["resident_state_bytes"]
        )
        report[mode] = entry
        print(
            f"{mode:9s}: {entry['median_requests_per_s']:8.1f} req/s, "
            f"p95 {entry['median_p95_ms']:7.2f} ms, resident "
            f"{entry['resident_state_bytes']:>9d} B "
            f"({entry['address_space_ratio']:.0f}x smaller than the "
            f"address space)"
        )
    primed = report["flat"]["primed_resident_state_bytes"]
    print(
        f"flat primed: resident {primed} B after touching all "
        f"{num_blocks} addresses "
        f"({primed / report['recursive']['resident_state_bytes']:.1f}x "
        f"the recursive resident state)"
    )

    status = 0
    ratio = report["recursive"]["address_space_ratio"]
    if ratio < RATIO_FLOOR:
        print(
            f"ERROR: recursive resident state too large — address space "
            f"is only {ratio:.1f}x resident bytes (bar: {RATIO_FLOOR}x)",
            file=sys.stderr,
        )
        status = 1
    if not args.smoke and status == 0:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check_regression is not None and status == 0:
        status = check_regression(args.check_regression, report)
    return status


def check_regression(baseline_path: pathlib.Path, report: dict) -> int:
    """CI gate: best recursive rate of this run vs the baseline median
    (best-of-N deliberately forgives shared-runner noise, as in
    ``bench_perf.py``)."""
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"ERROR: unreadable baseline {baseline_path}: {exc}",
              file=sys.stderr)
        return 1
    reference = baseline["recursive"]["median_requests_per_s"]
    floor = reference * (1.0 - REGRESSION_TOLERANCE)
    measured = report["recursive"]["best_requests_per_s"]
    verdict = "OK" if measured >= floor else "REGRESSION"
    print(
        f"regression gate: best recursive {measured:.1f} req/s vs "
        f"baseline median {reference:.1f} req/s (floor {floor:.1f}): "
        f"{verdict}"
    )
    if measured < floor:
        print(
            "ERROR: recursive-mode throughput regressed more than "
            f"{int(REGRESSION_TOLERANCE * 100)}% below the committed "
            "baseline; rerun to rule out noise or update "
            "BENCH_posmap.json with a justified regeneration",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

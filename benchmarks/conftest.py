"""Benchmark harness plumbing.

Each ``bench_figXX.py`` regenerates one figure of the paper at the
scale picked by ``REPRO_SCALE`` (small/medium/paper; default small),
times it once via pytest-benchmark's pedantic mode (these are
minutes-long simulations, not microbenchmarks), prints the figure's
rows and archives them under ``benchmarks/results/``.

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_SCALE=medium pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import FigureResult, scale_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    return scale_from_env()


@pytest.fixture
def figure_runner(benchmark, scale):
    """Run a figure module once, print and archive its table."""

    def run(figure_module, label: str, **kwargs) -> FigureResult:
        result = benchmark.pedantic(
            lambda: figure_module.run(scale, **kwargs), rounds=1, iterations=1
        )
        text = result.render()
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        out = RESULTS_DIR / f"{label}.{scale.name}.txt"
        out.write_text(text + "\n")
        return result

    return run

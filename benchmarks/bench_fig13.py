"""Figure 13: ORAM latency by on-chip caching design.

Shape targets: every cache beats merge-only; bigger MAC is better;
the 1 MB variants give the largest reductions.
"""

from repro.experiments import fig13


def test_fig13_caching_designs(figure_runner):
    result = figure_runner(fig13, "fig13")
    geo = dict(zip(result.columns[1:], result.rows[-1][1:]))
    assert geo["Merge only"] < 1.1
    assert geo["Merge+128K MAC"] < geo["Merge only"]
    assert geo["Merge+256K MAC"] < geo["Merge+128K MAC"]
    assert geo["Merge+1M MAC"] < geo["Merge+256K MAC"]

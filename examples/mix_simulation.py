#!/usr/bin/env python3
"""Full-system run of a Table 2 mix: traditional vs Fork Path.

Reproduces, at laptop scale, the per-mix story behind Figures 12-15:
four out-of-order cores run a SPEC 2006 mix stand-in closed-loop
against the ORAM memory system, and the script reports ORAM latency,
execution-time slowdown versus an insecure processor, DRAM traffic and
energy for each controller configuration.

Usage::

    python examples/mix_simulation.py [Mix1 .. Mix10]
"""

from __future__ import annotations

import sys

from repro import (
    CacheConfig,
    OramConfig,
    SystemConfig,
    fork_path_scheduler,
    traditional_scheduler,
)
from repro.analysis.report import format_table
from repro.memsys.system import simulate_system
from repro.workloads.mixes import mix_benchmarks, mix_names


def main(mix: str) -> None:
    base = SystemConfig(
        oram=OramConfig(levels=15, stash_capacity=300),
        scheduler=fork_path_scheduler(64),
        cache=CacheConfig(policy="none"),
    )
    variants = [
        ("Traditional ORAM", base.replace(scheduler=traditional_scheduler())),
        ("Merge only", base),
        (
            "Merge+256K MAC",
            base.replace(
                cache=CacheConfig(policy="mac", capacity_bytes=256 * 1024)
            ),
        ),
        (
            "Merge+1M MAC",
            base.replace(cache=CacheConfig(policy="mac", capacity_bytes=1 << 20)),
        ),
    ]

    benchmarks = mix_benchmarks(mix)
    print(f"{mix}: " + ", ".join(spec.name for spec in benchmarks))
    print()

    rows = []
    for name, config in variants:
        result = simulate_system(
            config,
            benchmarks,
            instructions_per_core=200_000,
            seed=1,
            footprint_cap=15_000,
        )
        metrics = result.metrics
        rows.append(
            [
                name,
                f"{metrics.avg_latency_ns:.0f}",
                f"{result.slowdown:.2f}x",
                metrics.dram_read_nodes + metrics.dram_written_nodes,
                f"{result.energy.total_mj:.2f}",
                f"{metrics.dummy_fraction:.1%}",
            ]
        )
    print(
        format_table(
            f"Full-system comparison on {mix} (4 OoO cores, 200k instr/core)",
            [
                "config",
                "ORAM latency (ns)",
                "slowdown",
                "DRAM buckets",
                "energy (mJ)",
                "dummies",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    requested = sys.argv[1] if len(sys.argv) > 1 else "Mix3"
    if requested not in mix_names():
        raise SystemExit(f"unknown mix {requested!r}; choose from {mix_names()}")
    main(requested)

#!/usr/bin/env python3
"""Quickstart: Path ORAM basics, then Fork Path on the same workload.

Runs in a few seconds. Three stops:

1. the functional Path ORAM protocol as a drop-in oblivious key-value
   store;
2. the timed Fork Path controller versus traditional Path ORAM on an
   identical request trace — the headline path-length/latency win;
3. where the saving comes from (the fork read/write sets).
"""

from __future__ import annotations

import random

from repro import (
    CacheConfig,
    PathOram,
    Simulation,
    SystemConfig,
    fork_path_scheduler,
    small_test_config,
    traditional_scheduler,
)
from repro.workloads.synthetic import hotspot_trace


def demo_functional_path_oram() -> None:
    print("=" * 64)
    print("1. Functional Path ORAM (the protocol itself)")
    print("=" * 64)
    oram = PathOram(small_test_config(10), rng=random.Random(7))
    oram.write(42, "the answer")
    oram.write(7, [1, 2, 3])
    print(f"read(42) -> {oram.read(42)!r}")
    print(f"read(7)  -> {oram.read(7)!r}")
    stats = oram.stats
    print(
        f"{stats.accesses} tree accesses, "
        f"{stats.avg_path_buckets:.0f} buckets per phase "
        f"(always L+1 = {oram.config.path_length} for the baseline), "
        f"max stash occupancy {oram.stash.max_occupancy}"
    )
    print(
        "every access re-randomises the block's leaf: "
        f"label of 42 is now {oram.posmap.peek(42)} "
        f"of {oram.geometry.num_leaves} leaves"
    )
    print()


def demo_fork_path_vs_traditional() -> None:
    print("=" * 64)
    print("2. Fork Path vs traditional Path ORAM (timed controller)")
    print("=" * 64)
    results = {}
    for name, scheduler in [
        ("traditional", traditional_scheduler()),
        ("fork path (queue=64)", fork_path_scheduler(64)),
    ]:
        config = SystemConfig(
            oram=small_test_config(14, block_bytes=64),
            scheduler=scheduler,
            cache=CacheConfig(policy="none"),
        )
        trace = hotspot_trace(
            3000, 4000, mean_gap_ns=120.0, rng=random.Random(1)
        )
        metrics = Simulation(config).run(trace, rng=random.Random(2)).metrics
        results[name] = metrics
        print(
            f"{name:22s}: avg path {metrics.avg_path_buckets:5.2f} buckets/phase, "
            f"ORAM latency {metrics.avg_latency_ns:8.0f} ns, "
            f"dummy accesses {metrics.dummy_fraction:5.1%}"
        )
    trad = results["traditional"]
    fork = results["fork path (queue=64)"]
    print(
        f"-> path length x{trad.avg_path_buckets / fork.avg_path_buckets:.2f}, "
        f"latency x{trad.avg_latency_ns / fork.avg_latency_ns:.2f} better"
    )
    print()


def demo_fork_shape() -> None:
    print("=" * 64)
    print("3. The fork shape (why merging is free)")
    print("=" * 64)
    from repro.oram.tree import TreeGeometry

    tree = TreeGeometry(3)
    current, nxt = 1, 3
    print(f"path-{current}: nodes {tree.path_nodes(current)}")
    print(f"path-{nxt}: nodes {tree.path_nodes(nxt)}")
    shared = tree.shared_nodes(current, nxt)
    print(
        f"shared prefix {shared} is written by access 1 only to be read "
        f"back by access 2 -> Fork Path keeps it on chip and touches "
        f"only {tree.fork_nodes(current, nxt)} for the second access."
    )


if __name__ == "__main__":
    demo_functional_path_oram()
    demo_fork_path_vs_traditional()
    demo_fork_shape()

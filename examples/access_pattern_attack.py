#!/usr/bin/env python3
"""The motivating attack: access patterns leak even through encryption.

A victim runs binary search over an encrypted array in untrusted
memory. The adversary sees only (encrypted) bus addresses — and still
recovers the secret query, because the probe sequence of binary search
*is* the query. The same victim behind a Path ORAM leaks nothing: the
adversary's best guess degrades to chance.

This is the scenario the paper's Section 1/2 motivates ORAM with
(cf. Zhuang et al., HIDE; Liu et al., GhostRider).
"""

from __future__ import annotations

import random
from typing import List

from repro import PathOram, small_test_config


class BusSpy:
    """Adversary's view of a plain (non-ORAM) encrypted memory."""

    def __init__(self) -> None:
        self.addresses: List[int] = []

    def observe(self, addr: int) -> None:
        self.addresses.append(addr)


def binary_search_plain(data_len: int, secret: int, spy: BusSpy) -> None:
    """Victim probing plain memory: every probe address is on the bus."""
    lo, hi = 0, data_len - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        spy.observe(mid)  # the bus shows the (encrypted) access to mid
        if mid == secret:
            return
        if mid < secret:
            lo = mid + 1
        else:
            hi = mid - 1


def recover_secret(data_len: int, probes: List[int]) -> int:
    """Adversary replays the binary-search decision tree: the probe
    sequence uniquely identifies the search target."""
    lo, hi = 0, data_len - 1
    for index, probe in enumerate(probes):
        mid = (lo + hi) // 2
        assert probe == mid, "not a binary search trace"
        if index == len(probes) - 1:
            return mid
        nxt = probes[index + 1]
        if nxt > mid:
            lo = mid + 1
        else:
            hi = mid - 1
    return (lo + hi) // 2


def binary_search_oram(oram: PathOram, data_len: int, secret: int) -> None:
    """Same victim, but memory is a Path ORAM."""
    lo, hi = 0, data_len - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        oram.read(mid)  # the bus shows a uniformly random tree path
        if mid == secret:
            return
        if mid < secret:
            lo = mid + 1
        else:
            hi = mid - 1


def main() -> None:
    data_len = 1024
    rng = random.Random(1)

    print("=" * 64)
    print("Plain encrypted memory: the probe addresses leak the query")
    print("=" * 64)
    recovered = 0
    for _ in range(50):
        secret = rng.randrange(data_len)
        spy = BusSpy()
        binary_search_plain(data_len, secret, spy)
        if recover_secret(data_len, spy.addresses) == secret:
            recovered += 1
    print(f"adversary recovered the secret query in {recovered}/50 runs")
    print()

    print("=" * 64)
    print("Behind Path ORAM: the bus shows only random paths")
    print("=" * 64)
    oram = PathOram(small_test_config(11), rng=random.Random(2))
    for addr in range(data_len):
        oram.write(addr, addr)
    oram.memory.trace.clear()
    oram.stats.leaf_sequence.clear()

    secret = rng.randrange(data_len)
    binary_search_oram(oram, data_len, secret)
    leaves = oram.stats.leaf_sequence
    print(f"victim searched for {secret}; bus shows leaves {leaves}")

    # Adversary's best strategy: guess from the observed labels. But
    # labels are uniform and independent of the probes, so simulate the
    # attack: for each candidate secret, how consistent is the trace?
    # Every candidate of the same search length is equally consistent.
    probes_needed = len(leaves)
    candidates = []
    for guess in range(data_len):
        lo, hi, steps = 0, data_len - 1, 0
        while lo <= hi:
            mid = (lo + hi) // 2
            steps += 1
            if mid == guess:
                break
            if mid < guess:
                lo = mid + 1
            else:
                hi = mid - 1
        if steps == probes_needed:
            candidates.append(guess)
    print(
        f"trace length is the only signal: {len(candidates)} candidate "
        f"secrets are exactly consistent -> adversary success probability "
        f"{1 / len(candidates):.2%} (vs {recovered * 2}% on plain memory)"
    )
    print(
        "(and the paper's nonstop dummy stream removes even the "
        "trace-length signal)"
    )


if __name__ == "__main__":
    main()

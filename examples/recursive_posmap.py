#!/usr/bin/env python3
"""Serving a large address space with bounded client state.

The live service demo for ``posmap.mode=recursive``
(``docs/POSMAP.md``): start the oblivious KV service twice over the
same 2^14-leaf tree — once with the flat O(N) position map, once with
the hierarchical map under a 1 KiB client budget — drive both with the
verifying load generator, and print what changed:

* the recursion layout the budget bought (levels, packing, root size);
* resident client state after touching the whole address space —
  the flat map grows with every address, the recursive map cannot;
* the ``posmap_ns`` latency phase the chains cost.

Equivalent to running::

    python -m repro serve --small --set posmap.mode=recursive \\
        --set posmap.client_budget_bytes=1024

Run from the repository root::

    PYTHONPATH=src python examples/recursive_posmap.py
"""

from __future__ import annotations

import asyncio
import copy
import tracemalloc

from repro.config import (
    CacheConfig,
    PosmapConfig,
    SchedulerConfig,
    SystemConfig,
    small_test_config,
)
from repro.oram.tree import TreeGeometry
from repro.posmap import plan_layout
from repro.serve.loadgen import run_loadgen
from repro.serve.service import OramService

LEVELS = 14  # 65534 addressable 64 B blocks (4 MiB address space)
BUDGET = 1024


def config_for(mode: str) -> SystemConfig:
    return SystemConfig(
        oram=small_test_config(LEVELS, block_bytes=64),
        scheduler=SchedulerConfig(label_queue_size=8),
        cache=CacheConfig(policy="none"),
        posmap=PosmapConfig(mode=mode, client_budget_bytes=BUDGET),
        seed=7,
    )


def resident_bytes(engine) -> int:
    tracemalloc.start()
    snapshot = copy.deepcopy(engine.capture_state())
    resident, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del snapshot
    return resident


async def serve_once(mode: str) -> dict:
    service = OramService(config_for(mode))
    host, port = await service.start()
    try:
        result = await run_loadgen(
            host, port, clients=2, requests=15,
            num_blocks=service.engine.num_blocks, seed=7,
        )
    finally:
        await service.stop()
    assert not (result.lost or result.failed or result.mismatches)
    engine = service.engine
    stats = {
        "requests_per_s": result.summary()["requests_per_s"],
        "resident_after_load": resident_bytes(engine),
    }
    if mode == "flat":
        # A long-lived flat service ends up with every address mapped.
        for addr in range(engine.num_blocks):
            engine.posmap.lookup(addr)
        stats["resident_after_priming"] = resident_bytes(engine)
    else:
        stats["chains"] = engine.posmap.real_chains + engine.posmap.dummy_chains
        stats["resident_after_priming"] = stats["resident_after_load"]
    return stats


def main() -> None:
    config = config_for("recursive")
    layout = plan_layout(
        config.oram, config.posmap, TreeGeometry(config.oram.levels)
    )
    space = config.oram.num_blocks * config.oram.block_bytes
    print(f"address space: {config.oram.num_blocks} blocks "
          f"({space / 2**20:.1f} MiB); client budget {BUDGET} B")
    print(f"planned layout: {layout.describe()}")
    print()
    for mode in ("flat", "recursive"):
        stats = asyncio.run(serve_once(mode))
        primed = stats["resident_after_priming"]
        print(f"{mode:9s}: {stats['requests_per_s']:7.1f} req/s, resident "
              f"client state {primed:>9d} B once every address is touched "
              f"({space / primed:,.0f}x smaller than the address space)")
    print()
    print("the flat map grows with the address space; the recursive map "
          "keeps only the root map + per-level stashes resident, at the "
          "cost of one posmap chain per access (the posmap_ns phase).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""An encrypted, access-pattern-hiding key-value store.

Builds the full stack the paper assumes: counter-mode encrypted
buckets in untrusted memory, a hierarchical (recursive) position map in
the same unified tree, and a Path ORAM protocol on top — then shows
what the adversary actually observes on the memory bus.

The point of the demo: after encryption alone, *addresses* still leak
(the same key touches the same location); after ORAM, the bus shows
only uniformly random tree paths.
"""

from __future__ import annotations

import random
from collections import Counter

from repro import PathOram, RecursiveOram, small_test_config
from repro.config import RecursionConfig
from repro.oram.encryption import CounterModeCipher
from repro.oram.memory import UntrustedMemory
from repro.oram.tree import TreeGeometry
from repro.security.properties import chi_square_uniformity


class SecureKvStore:
    """Dict-like store over an encrypted, recursive Path ORAM."""

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        config = small_test_config(12, block_bytes=64)
        self._oram = RecursiveOram(
            config,
            RecursionConfig(
                enabled=True, labels_per_block=16, onchip_posmap_bytes=1024
            ),
            rng=random.Random(seed),
        )
        self._capacity = min(capacity, self._oram.space.num_data_blocks)
        self._slots: dict[str, int] = {}

    def _slot(self, key: str) -> int:
        slot = self._slots.get(key)
        if slot is None:
            if len(self._slots) >= self._capacity:
                raise KeyError("store full")
            slot = len(self._slots)
            self._slots[key] = slot
        return slot

    def put(self, key: str, value: object) -> None:
        self._oram.write(self._slot(key), value)

    def get(self, key: str) -> object:
        if key not in self._slots:
            raise KeyError(key)
        return self._oram.read(self._slots[key])

    @property
    def oram(self) -> RecursiveOram:
        return self._oram


def demo_store() -> None:
    print("=" * 64)
    print("Oblivious key-value store (recursive ORAM, unified tree)")
    print("=" * 64)
    store = SecureKvStore(seed=3)
    store.put("alice", {"balance": 120})
    store.put("bob", {"balance": 7})
    store.put("alice", {"balance": 95})
    print(f"get('alice') -> {store.get('alice')}")
    print(f"get('bob')   -> {store.get('bob')}")
    stats = store.oram.stats
    print(
        f"{stats.requests} requests -> {stats.oram_accesses} tree accesses "
        f"({store.oram.space.depth} PosMap levels per request; "
        f"layout: {store.oram.space.describe()})"
    )
    print()


def demo_bus_view() -> None:
    print("=" * 64)
    print("What the adversary sees on the bus")
    print("=" * 64)
    cipher = CounterModeCipher(b"demo-key", block_bytes=16)
    config = small_test_config(8, block_bytes=16)
    geometry = TreeGeometry(config.levels)
    memory = UntrustedMemory(geometry, config.bucket_slots, cipher)
    oram = PathOram(config, rng=random.Random(1), memory=memory)

    # A very biased program: hammer one key.
    for step in range(400):
        oram.write(5, step)

    leaves = oram.stats.leaf_sequence
    print(f"400 writes to ONE address produced {len(leaves)} path accesses")
    print(f"first leaves observed: {leaves[:12]} ...")
    p = chi_square_uniformity(leaves, geometry.num_leaves)
    print(f"chi-square uniformity p-value of the leaf sequence: {p:.3f}")

    counts = Counter(event.node_id for event in memory.trace.events)
    root, leaf_nodes = counts[0], sum(
        counts[geometry.leaf_node(leaf)] for leaf in range(geometry.num_leaves)
    )
    print(
        f"bucket-touch histogram: root touched {root}x, "
        f"all {geometry.num_leaves} leaf buckets together {leaf_nodes}x "
        "- exactly the profile of uniformly random paths, nothing about "
        "which program address was accessed."
    )
    sealed = memory._store[0]
    print(f"a bucket on the bus is ciphertext: {sealed[:24].hex()}...")


if __name__ == "__main__":
    demo_store()
    demo_bus_view()
